package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"bfast/internal/obs"
)

// get issues a GET and returns the response with its body drained.
func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// postWithHeaders is post with extra request headers.
func postWithHeaders(t *testing.T, ts *httptest.Server, path string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func batchBody(rng *rand.Rand, m, n int) map[string]any {
	pixels := make([]Series, m)
	for i := range pixels {
		pixels[i] = jsonSeries(rng, n, n/2+10, 0.3)
	}
	return map[string]any{"pixels": pixels, "history": n / 2}
}

// TestRequestIDAndSpanTree is the PR's acceptance path: a batch request
// with a client X-Request-ID must echo the ID, and its span tree —
// server root through the batched kernel phases — must be retrievable
// from /debug/bfast/traces under that ID.
func TestRequestIDAndSpanTree(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{}))
	defer ts.Close()
	rng := rand.New(rand.NewSource(41))

	const id = "corr-test-1234"
	resp, body := postWithHeaders(t, ts, "/v1/batch", batchBody(rng, 24, 120),
		map[string]string{HeaderRequestID: id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderRequestID); got != id {
		t.Fatalf("response %s = %q, want %q", HeaderRequestID, got, id)
	}

	tresp, tbody := get(t, ts, "/debug/bfast/traces?request_id="+id)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("traces status %d: %s", tresp.StatusCode, tbody)
	}
	var tr obs.Trace
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatalf("trace decode: %v: %s", err, tbody)
	}
	if tr.RequestID != id || tr.Endpoint != "batch" || tr.Code != http.StatusOK || tr.Pixels != 24 {
		t.Fatalf("trace fields: %+v", tr)
	}
	if tr.Spans == nil || tr.Spans.Name != "server.batch" {
		t.Fatalf("span tree root: %+v", tr.Spans)
	}
	for _, name := range []string{
		"decode", "pack", "detect", "encode",
		"core.detect_batch", "kernel.mask", "kernel.cross_product",
		"kernel.invert", "kernel.residual", "kernel.mosum", "sched.foreach",
	} {
		if tr.Spans.Find(name) == nil {
			t.Fatalf("span tree missing %q:\n%s", name, tbody)
		}
	}
	// detect must dominate decode+pack for a real batch; sanity-check
	// that durations are populated, not just names.
	if d := tr.Spans.Find("detect"); d.DurNs <= 0 {
		t.Fatalf("detect span duration %d", d.DurNs)
	}
}

// TestRequestIDGenerated: without a client ID the server must mint one
// (8 random bytes, hex); oversized client IDs are replaced, not echoed.
func TestRequestIDGenerated(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{}))
	defer ts.Close()
	rng := rand.New(rand.NewSource(42))
	body := map[string]any{"series": jsonSeries(rng, 60, -1, 0.2), "history": 30}

	resp, _ := post(t, ts, "/v1/detect", body)
	id := resp.Header.Get(HeaderRequestID)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("generated request id %q, want 16 hex chars", id)
	}

	resp, _ = postWithHeaders(t, ts, "/v1/detect", body,
		map[string]string{HeaderRequestID: strings.Repeat("x", 200)})
	if got := resp.Header.Get(HeaderRequestID); len(got) > maxRequestIDLen {
		t.Fatalf("oversized client id echoed back (%d chars)", len(got))
	}
}

// TestTracesEndpoint: the unfiltered listing returns recent traces;
// unknown request IDs return 404 with the structured error envelope.
func TestTracesEndpoint(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{}))
	defer ts.Close()
	rng := rand.New(rand.NewSource(43))
	post(t, ts, "/v1/detect", map[string]any{"series": jsonSeries(rng, 60, -1, 0.2), "history": 30})

	resp, body := get(t, ts, "/debug/bfast/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var listing struct {
		Traces []obs.Trace `json:"traces"`
	}
	if err := json.Unmarshal(body, &listing); err != nil || len(listing.Traces) == 0 {
		t.Fatalf("traces listing: %v: %s", err, body)
	}

	resp, body = get(t, ts, "/debug/bfast/traces?request_id=never-seen")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status %d: %s", resp.StatusCode, body)
	}
}

// TestTracingDisabledSkipsSpans: TraceDepth < 0 turns the ring off, and
// with it the root span — requests still serve, with no span machinery.
func TestTracingDisabledSkipsSpans(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{TraceDepth: -1}))
	defer ts.Close()
	rng := rand.New(rand.NewSource(44))
	resp, body := post(t, ts, "/v1/batch", batchBody(rng, 8, 80))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(HeaderRequestID) == "" {
		t.Fatal("request id must be issued even with tracing off")
	}
}

// TestMetricsPrometheusNegotiation: the server's /metrics must serve the
// Prometheus text format under Accept: text/plain and keep JSON the
// default — including the serving metrics with cumulative buckets.
func TestMetricsPrometheusNegotiation(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(mustServer(t, Config{Metrics: reg}))
	defer ts.Close()
	rng := rand.New(rand.NewSource(45))
	post(t, ts, "/v1/detect", map[string]any{"series": jsonSeries(rng, 60, -1, 0.2), "history": 30})

	resp, body := get(t, ts, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default /metrics content type %q", ct)
	}
	var flat map[string]any
	if err := json.Unmarshal(body, &flat); err != nil {
		t.Fatalf("JSON metrics: %v", err)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(presp.Body)
	text := buf.String()
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE server_detect_requests counter",
		"# TYPE server_detect_latency_ms histogram",
		`server_detect_latency_ms_bucket{le="+Inf"} 1`,
		"server_detect_latency_ms_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRequestLogging: a configured logger receives one structured line
// per request, carrying the request ID and a level matching the outcome.
func TestRequestLogging(t *testing.T) {
	var logBuf bytes.Buffer
	lg, err := obs.NewLogger(&logBuf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(mustServer(t, Config{Logger: lg}))
	defer ts.Close()
	rng := rand.New(rand.NewSource(46))

	postWithHeaders(t, ts, "/v1/detect",
		map[string]any{"series": jsonSeries(rng, 60, -1, 0.2), "history": 30},
		map[string]string{HeaderRequestID: "log-ok"})
	postWithHeaders(t, ts, "/v1/detect", map[string]any{"history": 30},
		map[string]string{HeaderRequestID: "log-bad"})

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("log lines = %d, want 2: %s", len(lines), logBuf.String())
	}
	var ok, bad map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &bad); err != nil {
		t.Fatal(err)
	}
	if ok["request_id"] != "log-ok" || ok["level"] != "INFO" || ok["endpoint"] != "detect" {
		t.Fatalf("ok line: %v", ok)
	}
	if bad["request_id"] != "log-bad" || bad["level"] != "WARN" || bad["err"] != CodeInvalidArgument {
		t.Fatalf("bad line: %v", bad)
	}
}

// TestPprofBehindFlag: /debug/pprof/ must 404 by default and serve the
// index when EnablePprof is set.
func TestPprofBehindFlag(t *testing.T) {
	off := httptest.NewServer(mustServer(t, Config{}))
	defer off.Close()
	if resp, _ := get(t, off, "/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(mustServer(t, Config{EnablePprof: true}))
	defer on.Close()
	resp, body := get(t, on, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof on: status %d body %q", resp.StatusCode, body[:min(len(body), 80)])
	}

	// DisableDebug wins over EnablePprof.
	both := httptest.NewServer(mustServer(t, Config{EnablePprof: true, DisableDebug: true}))
	defer both.Close()
	if resp, _ := get(t, both, "/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DisableDebug must win: status %d", resp.StatusCode)
	}
}

// TestRuntimeSamplerLifecycle: SampleRuntimeEvery publishes runtime.*
// gauges into the server's registry and Shutdown stops the sampler.
func TestRuntimeSamplerLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	s := mustServer(t, Config{Metrics: reg, SampleRuntimeEvery: time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := reg.Snapshot()["runtime.goroutines"]; ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("runtime sampler never published")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
