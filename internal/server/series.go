package server

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
)

// Series is a pixel time series on the wire: a JSON array of numbers
// with null for each missing observation, held in memory as []float64
// with NaN for missing — the kernels' native encoding.
//
// It implements the JSON conversions by hand because the stock encoding
// for "nullable float" ([]*float64) costs one heap pointer per present
// value plus a reflect-driven decode; under small-request traffic the
// body decode rivals kernel time and its garbage dominates GC load.
// Parsing number tokens directly into the final float64 representation
// removes both, and removes the pointer→NaN conversion pass the
// handlers used to run. The wire format is unchanged and the number
// grammar is validated exactly as encoding/json does (same ParseFloat,
// same JSON number syntax), so accepted and rejected bodies — and the
// decoded values — are identical to the previous encoding.
type Series []float64

// MarshalJSON renders NaN as null. Infinities are rejected the same way
// encoding/json rejects them for float64.
func (s Series) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	out := make([]byte, 0, 8*len(s)+2)
	out = append(out, '[')
	for i, v := range s {
		if i > 0 {
			out = append(out, ',')
		}
		switch {
		case math.IsNaN(v):
			out = append(out, "null"...)
		case math.IsInf(v, 0):
			return nil, fmt.Errorf("series: unsupported value %g", v)
		default:
			out = appendJSONFloat(out, v)
		}
	}
	return append(out, ']'), nil
}

// appendJSONFloat formats like encoding/json: shortest round-trip form,
// with the e-notation boundaries JSON readers expect.
func appendJSONFloat(out []byte, v float64) []byte {
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	start := len(out)
	out = strconv.AppendFloat(out, v, format, -1, 64)
	if format == 'e' {
		// Trim "e-06" style exponents to "e-6" as encoding/json does.
		if n := len(out); n >= start+4 && out[n-4] == 'e' && out[n-3] == '-' && out[n-2] == '0' {
			out[n-2] = out[n-1]
			out = out[:n-1]
		}
	}
	return out
}

func isJSONSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// jsonNumber reports whether tok matches the JSON number grammar —
// strconv.ParseFloat alone is laxer (hex floats, leading +, Inf), so
// tokens are validated first to keep accept/reject behavior identical
// to encoding/json.
func jsonNumber(tok []byte) bool {
	i := 0
	if i < len(tok) && tok[i] == '-' {
		i++
	}
	switch {
	case i < len(tok) && tok[i] == '0':
		i++
	case i < len(tok) && tok[i] >= '1' && tok[i] <= '9':
		for i < len(tok) && isDigit(tok[i]) {
			i++
		}
	default:
		return false
	}
	if i < len(tok) && tok[i] == '.' {
		i++
		if i >= len(tok) || !isDigit(tok[i]) {
			return false
		}
		for i < len(tok) && isDigit(tok[i]) {
			i++
		}
	}
	if i < len(tok) && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		if i >= len(tok) || !isDigit(tok[i]) {
			return false
		}
		for i < len(tok) && isDigit(tok[i]) {
			i++
		}
	}
	return i == len(tok)
}

// UnmarshalJSON parses an array of numbers/nulls without reflection or
// per-value boxing. data is one complete JSON value as handed over by
// encoding/json's decoder.
func (s *Series) UnmarshalJSON(data []byte) error {
	d := bytes.TrimSpace(data)
	if bytes.Equal(d, []byte("null")) {
		*s = nil
		return nil
	}
	if len(d) < 2 || d[0] != '[' || d[len(d)-1] != ']' {
		return fmt.Errorf("series: expected an array of numbers or nulls")
	}
	body := d[1 : len(d)-1]
	// One comma per element past the first; pre-size for the common case
	// of a dense array.
	out := make(Series, 0, bytes.Count(body, []byte{','})+1)
	i, n := 0, len(body)
	for {
		for i < n && isJSONSpace(body[i]) {
			i++
		}
		if i >= n {
			if len(out) > 0 {
				return fmt.Errorf("series: trailing comma")
			}
			break // empty array
		}
		start := i
		for i < n && body[i] != ',' {
			i++
		}
		tok := body[start:i]
		for len(tok) > 0 && isJSONSpace(tok[len(tok)-1]) {
			tok = tok[:len(tok)-1]
		}
		hadComma := i < n
		if hadComma {
			i++
		}
		switch {
		case len(tok) == 0:
			return fmt.Errorf("series: missing value at element %d", len(out))
		case bytes.Equal(tok, []byte("null")):
			out = append(out, math.NaN())
		case jsonNumber(tok):
			v, err := strconv.ParseFloat(string(tok), 64)
			if err != nil {
				return fmt.Errorf("series: element %d: %v", len(out), err)
			}
			out = append(out, v)
		default:
			return fmt.Errorf("series: element %d: invalid value %q", len(out), tok)
		}
		if !hadComma {
			break
		}
	}
	*s = out
	return nil
}
