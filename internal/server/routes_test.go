package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bfast/internal/leakcheck"
)

// mustServer builds a server or fails the test — the constructor only
// errors on misconfiguration, which no test below intends. Every
// server carries background goroutines (SLO monitor, runtime sampler,
// batcher, diagnostics), so the helper registers a graceful Shutdown
// cleanup plus a leakcheck: any goroutine the shutdown paths fail to
// reap fails the test. Cleanups run LIFO, so the leak snapshot taken
// here is compared after Shutdown completes; explicit Shutdown calls
// inside tests are fine — every stop path is idempotent.
func mustServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	leakcheck.Check(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return s
}

// TestRouteTablePinsTheMux: the declarative table and the mux must
// agree in both directions, under every gating configuration.
func TestRouteTablePinsTheMux(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{DisableDebug: true},
		{EnablePprof: true},
		{EnablePprof: true, DisableDebug: true},
	} {
		s := mustServer(t, cfg)
		if err := s.VerifyRoutes(); err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
	}
}

// TestUndeclaredRouteFailsVerification: mounting a route that is not in
// RouteTable must fail VerifyRoutes — the drift CI would catch.
func TestUndeclaredRouteFailsVerification(t *testing.T) {
	s := mustServer(t, Config{})
	s.handle("/v1/rogue", http.NotFoundHandler())
	err := s.VerifyRoutes()
	if err == nil || !strings.Contains(err.Error(), "/v1/rogue") {
		t.Fatalf("undeclared route passed verification: %v", err)
	}
}

// TestMissingDeclaredRouteFailsVerification: a declared-but-unmounted
// route must fail too (the other drift direction).
func TestMissingDeclaredRouteFailsVerification(t *testing.T) {
	s := mustServer(t, Config{})
	for i, p := range s.registered {
		if p == "/v1/observe" {
			s.registered = append(s.registered[:i], s.registered[i+1:]...)
			break
		}
	}
	err := s.VerifyRoutes()
	if err == nil || !strings.Contains(err.Error(), "/v1/observe") {
		t.Fatalf("missing declared route passed verification: %v", err)
	}
}

// TestDeclaredRoutesAreServed: every route the table declares for the
// default config actually answers — no 404, and the declared method is
// accepted while a wrong one is rejected with method_not_allowed.
func TestDeclaredRoutesAreServed(t *testing.T) {
	cfg := Config{EnablePprof: true}
	ts := httptest.NewServer(mustServer(t, cfg))
	defer ts.Close()
	for _, rt := range RouteTable() {
		if rt.Pprof {
			// pprof handlers are stdlib-owned; mounting is covered by
			// VerifyRoutes and the observability tests.
			continue
		}
		req, err := http.NewRequest(rt.Method, ts.URL+rt.Path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound && rt.Path != "/v1/sessions" {
			t.Errorf("%s %s: 404 — declared route not served", rt.Method, rt.Path)
		}
		if resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("%s %s: declared method rejected", rt.Method, rt.Path)
		}
	}
	// Wrong method on a declared path → structured method_not_allowed.
	resp, err := http.Get(ts.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/observe: %d, want 405", resp.StatusCode)
	}
}

// TestRouteTableCodesAreDeclared: every code a route lists must be one
// of the documented Code* constants — the README error-code table and
// the route table cannot drift apart silently.
func TestRouteTableCodesAreDeclared(t *testing.T) {
	known := map[string]bool{
		CodeInvalidJSON: true, CodeInvalidArgument: true, CodeLengthMismatch: true,
		CodeBodyTooLarge: true, CodeBatchTooLarge: true, CodeMethodNotAllowed: true,
		CodeRateLimited: true, CodeCanceled: true, CodeUnavailable: true,
		CodeNotFound: true, CodeSessionExhausted: true, CodeInternal: true,
	}
	for _, rt := range RouteTable() {
		for _, c := range rt.Codes {
			if !known[c] {
				t.Errorf("%s %s declares unknown code %q", rt.Method, rt.Path, c)
			}
		}
	}
}
