package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bfast/internal/sched"
)

// errEnvelope decodes the {"error":{"code","message"}} wire shape.
func errEnvelope(t *testing.T, body []byte) errorDetail {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body not structured: %v: %s", err, body)
	}
	if e.Error.Code == "" {
		t.Fatalf("error body missing code: %s", body)
	}
	return e.Error
}

// TestDeclaredLengthMismatch is the regression test for the n-vs-data
// framing check: an over-long series against a declared n must fail with
// a structured 400 length_mismatch, not silently compute on bad framing.
func TestDeclaredLengthMismatch(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{}))
	defer ts.Close()

	// Over-long series: 25 values declared as n=20.
	resp, body := post(t, ts, "/v1/detect", map[string]any{
		"series": make([]float64, 25), "n": 20, "history": 10,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if e := errEnvelope(t, body); e.Code != CodeLengthMismatch {
		t.Fatalf("code %q, want %q", e.Code, CodeLengthMismatch)
	}

	// Matching n passes the framing check (fails later only if params bad).
	resp, body = post(t, ts, "/v1/detect", map[string]any{
		"series": make([]float64, 25), "n": 25, "history": 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matching n: status %d: %s", resp.StatusCode, body)
	}

	// Batch: declared n binds every pixel row.
	resp, body = post(t, ts, "/v1/batch", map[string]any{
		"pixels": [][]float64{make([]float64, 20), make([]float64, 25)}, "n": 20, "history": 10,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch status %d, want 400: %s", resp.StatusCode, body)
	}
	if e := errEnvelope(t, body); e.Code != CodeLengthMismatch {
		t.Fatalf("batch code %q, want %q", e.Code, CodeLengthMismatch)
	}
}

func TestBodyAndBatchLimits(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{MaxBodyBytes: 128, MaxBatchPixels: 2}))
	defer ts.Close()

	big := `{"series": [` + strings.Repeat("0.5,", 200) + `0.5], "history": 10}`
	resp, err := http.Post(ts.URL+"/v1/detect", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, buf.Bytes())
	}
	if e := errEnvelope(t, buf.Bytes()); e.Code != CodeBodyTooLarge {
		t.Fatalf("code %q, want %q", e.Code, CodeBodyTooLarge)
	}

	resp2, body := post(t, ts, "/v1/batch", map[string]any{
		"pixels":  [][]float64{make([]float64, 3), make([]float64, 3), make([]float64, 3)},
		"history": 2,
	})
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("batch status %d, want 413: %s", resp2.StatusCode, body)
	}
	if e := errEnvelope(t, body); e.Code != CodeBatchTooLarge {
		t.Fatalf("code %q, want %q", e.Code, CodeBatchTooLarge)
	}
}

// TestConcurrencyLimit429 fills the semaphore and verifies the next
// request is rejected immediately with 429 + Retry-After, then succeeds
// once a slot frees up.
func TestConcurrencyLimit429(t *testing.T) {
	s := mustServer(t, Config{MaxConcurrent: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.sem <- struct{}{} // occupy the only compute slot
	resp, body := post(t, ts, "/v1/detect", map[string]any{"series": make([]float64, 30), "history": 10})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if e := errEnvelope(t, body); e.Code != CodeRateLimited {
		t.Fatalf("code %q, want %q", e.Code, CodeRateLimited)
	}
	if got := s.rateLimited.Value(); got < 1 {
		t.Fatalf("server.rate_limited = %d, want >= 1", got)
	}

	<-s.sem // free the slot; the same request now computes
	resp, body = post(t, ts, "/v1/detect", map[string]any{"series": make([]float64, 30), "history": 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after free: status %d: %s", resp.StatusCode, body)
	}
}

// TestBatchCancellationMidRequest verifies a canceled request abandons
// the batch kernel promptly (no steal units run for a pre-canceled
// context), records the canceled outcome, and releases its concurrency
// slot so the next request proceeds.
func TestBatchCancellationMidRequest(t *testing.T) {
	s := mustServer(t, Config{MaxConcurrent: 1})

	rng := rand.New(rand.NewSource(11))
	pixels := make([]Series, 64)
	for i := range pixels {
		pixels[i] = jsonSeries(rng, 200, -1, 0.2)
	}
	raw, err := json.Marshal(DetectRequest{Pixels: pixels, History: 100})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the kernel starts
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()

	ranBefore := sched.StatBlocksRun.Value()
	canceledBefore := s.cfg.Metrics.Counter("server.batch.canceled").Value()
	s.ServeHTTP(rec, req)

	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body.String())
	}
	if e := errEnvelope(t, rec.Body.Bytes()); e.Code != CodeCanceled {
		t.Fatalf("code %q, want %q", e.Code, CodeCanceled)
	}
	if ran := sched.StatBlocksRun.Value() - ranBefore; ran != 0 {
		t.Fatalf("canceled request still ran %d steal units", ran)
	}
	if got := s.cfg.Metrics.Counter("server.batch.canceled").Value() - canceledBefore; got != 1 {
		t.Fatalf("server.batch.canceled delta = %d, want 1", got)
	}

	// The slot must be free again: a live request on the same server works.
	req2 := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(raw))
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", rec2.Code, rec2.Body.String())
	}
}

// TestGracefulShutdownDrains starts a real listener, gets a request
// in flight, and verifies Shutdown waits for it to finish (200, full
// body) while Serve returns http.ErrServerClosed.
func TestGracefulShutdownDrains(t *testing.T) {
	s := mustServer(t, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	rng := rand.New(rand.NewSource(12))
	pixels := make([]Series, 2048)
	for i := range pixels {
		pixels[i] = jsonSeries(rng, 300, -1, 0.2)
	}
	raw, err := json.Marshal(DetectRequest{Pixels: pixels, History: 150})
	if err != nil {
		t.Fatal(err)
	}

	type reply struct {
		code int
		n    int
		err  error
	}
	done := make(chan reply, 1)
	go func() {
		resp, err := http.Post("http://"+l.Addr().String()+"/v1/batch", "application/json", bytes.NewReader(raw))
		if err != nil {
			done <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		var out []DetectResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		done <- reply{code: resp.StatusCode, n: len(out), err: err}
	}()

	// Wait until the request is actually computing.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK || r.n != len(pixels) {
		t.Fatalf("drained request: status %d, %d results (want 200, %d)", r.code, r.n, len(pixels))
	}
}

// TestHealthzDraining503 verifies the load-balancer signal flips during
// shutdown.
func TestHealthzDraining503(t *testing.T) {
	s := mustServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy: status %d", rec.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil { // no listener: enters draining only
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", rec.Code)
	}
	if e := errEnvelope(t, rec.Body.Bytes()); e.Code != CodeUnavailable {
		t.Fatalf("code %q, want %q", e.Code, CodeUnavailable)
	}
}

// TestMetricsEndpoint drives one request of each class and checks the
// /metrics JSON carries the serving, scheduler and kernel-phase series
// the CI smoke test greps for.
func TestMetricsEndpoint(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{}))
	defer ts.Close()

	rng := rand.New(rand.NewSource(13))
	pixels := []Series{jsonSeries(rng, 200, 150, 0.3), jsonSeries(rng, 200, -1, 0.3)}
	if resp, body := post(t, ts, "/v1/batch", DetectRequest{Pixels: pixels, History: 100}); resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"server.batch.requests", "server.batch.ok", "server.batch.latency_ms",
		"server.inflight", "server.rate_limited",
		"sched.blocks.run", "sched.loops", "kernel.pixels", "kernel.fused.ns",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
	if h, ok := m["server.batch.latency_ms"].(map[string]any); !ok {
		t.Fatalf("latency histogram shape: %T", m["server.batch.latency_ms"])
	} else if c, _ := h["count"].(float64); c < 1 {
		t.Fatalf("latency count = %v, want >= 1", h["count"])
	}
	if v, ok := m["server.batch.requests"].(float64); !ok || v < 1 {
		t.Fatalf("server.batch.requests = %v, want >= 1", m["server.batch.requests"])
	}
	if v, ok := m["kernel.pixels"].(float64); !ok || v < 2 {
		t.Fatalf("kernel.pixels = %v, want >= 2", m["kernel.pixels"])
	}
}

// TestDebugEndpoint checks /debug/bfast exposes limits and the trace ring.
func TestDebugEndpoint(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{TraceDepth: 8}))
	defer ts.Close()
	post(t, ts, "/v1/detect", map[string]any{"series": make([]float64, 30), "history": 10})

	resp, err := http.Get(ts.URL + "/debug/bfast")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dbg struct {
		Limits map[string]any `json:"limits"`
		Traces []struct {
			Endpoint string `json:"endpoint"`
			Code     int    `json:"code"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Limits["max_concurrent"] == nil {
		t.Fatal("debug missing limits")
	}
	if len(dbg.Traces) == 0 || dbg.Traces[len(dbg.Traces)-1].Endpoint != "detect" {
		t.Fatalf("debug traces missing the detect request: %+v", dbg.Traces)
	}
}

func TestDisableDebug(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{DisableDebug: true}))
	defer ts.Close()
	for _, p := range []string{"/metrics", "/debug/bfast"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", p, resp.StatusCode)
		}
	}
}

// TestRetryAfterConfigurable: the 429 Retry-After hint must follow
// Config.RetryAfterSeconds (default 1).
func TestRetryAfterConfigurable(t *testing.T) {
	s := mustServer(t, Config{MaxConcurrent: 1, RetryAfterSeconds: 7})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	resp, body := post(t, ts, "/v1/detect", map[string]any{"series": make([]float64, 30), "history": 10})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}
	if got := mustServer(t, Config{}).Config().RetryAfterSeconds; got != 1 {
		t.Fatalf("default RetryAfterSeconds = %d, want 1", got)
	}
}
