// Package server exposes BFAST-Monitor as a small HTTP service — the
// deployment shape a monitoring system actually runs as (the paper's
// "trigger countermeasures" use case implies something is watching):
//
//	POST /v1/detect  {"series": [...], "history": 113, ...}  -> Result JSON
//	POST /v1/trace   same body                               -> process trajectory
//	POST /v1/batch   {"pixels": [[...],[...]], "history": …} -> one Result per pixel
//	GET  /v1/healthz                                         -> ok
//
// NaN cannot be represented in JSON; missing observations are sent as
// null (the natural encoding for "no measurement").
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"

	"bfast/internal/baseline"
	"bfast/internal/core"
	"bfast/internal/stats"
)

// DetectRequest is the request body of /v1/detect and /v1/trace; /v1/batch
// uses the same options with Pixels instead of Series.
type DetectRequest struct {
	// Series is the pixel time series; null = missing observation.
	Series []*float64 `json:"series,omitempty"`
	// Pixels carries many series for /v1/batch.
	Pixels [][]*float64 `json:"pixels,omitempty"`
	// History is n, the history length in dates (required).
	History int `json:"history"`
	// Harmonics is k (default 3).
	Harmonics *int `json:"harmonics,omitempty"`
	// Frequency is f (default 23).
	Frequency *float64 `json:"frequency,omitempty"`
	// HFrac is the MOSUM window fraction (default 0.25).
	HFrac *float64 `json:"hfrac,omitempty"`
	// Level is the significance level (default 0.05).
	Level *float64 `json:"level,omitempty"`
	// Process is "mosum" (default) or "cusum".
	Process string `json:"process,omitempty"`
	// NoTrend drops the linear-trend regressor.
	NoTrend bool `json:"noTrend,omitempty"`
}

// DetectResponse is the per-pixel result.
type DetectResponse struct {
	Status       string   `json:"status"`
	BreakIndex   int      `json:"breakIndex"`
	Magnitude    *float64 `json:"magnitude,omitempty"`
	Sigma        *float64 `json:"sigma,omitempty"`
	ValidHistory int      `json:"validHistory"`
	Valid        int      `json:"valid"`
}

// TraceResponse is the /v1/trace body.
type TraceResponse struct {
	Status   string    `json:"status"`
	Dates    []int     `json:"dates,omitempty"`
	Process  []float64 `json:"process,omitempty"`
	Boundary []float64 `json:"boundary,omitempty"`
	BreakAt  int       `json:"breakAt"`
}

// New returns the service handler.
func New() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/detect", handleDetect)
	mux.HandleFunc("/v1/trace", handleTrace)
	mux.HandleFunc("/v1/batch", handleBatch)
	return mux
}

func (r *DetectRequest) options() core.Options {
	opt := core.DefaultOptions(r.History)
	if r.Harmonics != nil {
		opt.Harmonics = *r.Harmonics
	}
	if r.Frequency != nil {
		opt.Frequency = *r.Frequency
	}
	if r.HFrac != nil {
		opt.HFrac = *r.HFrac
	}
	if r.Level != nil {
		opt.Level = *r.Level
	}
	if r.Process == "cusum" {
		opt.Process = stats.ProcessCUSUM
	}
	opt.NoTrend = r.NoTrend
	return opt
}

// toFloats converts the null-for-missing JSON encoding to NaN.
func toFloats(in []*float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		if v == nil {
			out[i] = math.NaN()
		} else {
			out[i] = *v
		}
	}
	return out
}

func decodeRequest(w http.ResponseWriter, r *http.Request) (*DetectRequest, bool) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return nil, false
	}
	var req DetectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 256<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, false
	}
	return &req, true
}

func resultJSON(res core.Result) DetectResponse {
	out := DetectResponse{
		Status:       res.Status.String(),
		BreakIndex:   res.BreakIndex,
		ValidHistory: res.ValidHistory,
		Valid:        res.Valid,
	}
	if res.Status == core.StatusOK {
		m, s := res.MosumMean, res.Sigma
		out.Magnitude, out.Sigma = &m, &s
	}
	return out
}

func handleDetect(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	if len(req.Series) == 0 {
		httpError(w, http.StatusBadRequest, "series is required")
		return
	}
	y := toFloats(req.Series)
	opt := req.options()
	x, err := core.DesignFor(opt, len(y))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := core.Detect(y, x, opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, resultJSON(res))
}

func handleTrace(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	if len(req.Series) == 0 {
		httpError(w, http.StatusBadRequest, "series is required")
		return
	}
	y := toFloats(req.Series)
	opt := req.options()
	x, err := core.DesignFor(opt, len(y))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr, err := core.Trace(y, x, opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, TraceResponse{
		Status:   tr.Status.String(),
		Dates:    tr.Dates,
		Process:  tr.Process,
		Boundary: tr.Boundary,
		BreakAt:  tr.BreakAt,
	})
}

func handleBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	if len(req.Pixels) == 0 {
		httpError(w, http.StatusBadRequest, "pixels is required")
		return
	}
	n := len(req.Pixels[0])
	flat := make([]float64, 0, len(req.Pixels)*n)
	for i, p := range req.Pixels {
		if len(p) != n {
			httpError(w, http.StatusBadRequest, "pixel %d has %d dates, expected %d", i, len(p), n)
			return
		}
		flat = append(flat, toFloats(p)...)
	}
	b, err := core.NewBatch(len(req.Pixels), n, flat)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	results, err := baseline.CLike(b, req.options(), 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]DetectResponse, len(results))
	for i, res := range results {
		out[i] = resultJSON(res)
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
