// Package server exposes BFAST-Monitor as a production HTTP service —
// the deployment shape a monitoring system actually runs as (the paper's
// "trigger countermeasures" use case implies something is watching):
//
//	POST /v1/detect  {"series": [...], "history": 113, ...}  -> Result JSON
//	POST /v1/trace   same body                               -> process trajectory
//	POST /v1/batch   {"pixels": [[...],[...]], "history": …} -> one Result per pixel
//	GET  /v1/healthz                                         -> ok (503 while draining)
//	GET  /metrics                                            -> expvar-style metric JSON
//	GET  /debug/bfast                                        -> config, recent request traces
//
// NaN cannot be represented in JSON; missing observations are sent as
// null (the natural encoding for "no measurement").
//
// The serving spine (DESIGN.md §6): every request's context is plumbed
// into the detection kernels, so client disconnects and deadlines abandon
// the remaining steal units; heavy endpoints run under a concurrency
// limit with immediate 429 backpressure; request/batch sizes are bounded;
// errors carry stable machine-readable codes; Shutdown drains in-flight
// requests before returning.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bfast/internal/obs"
)

// Config parameterizes the service. The zero value serves with
// production defaults; see the field comments for what 0 means.
type Config struct {
	// MaxBodyBytes caps a request body (default 256 MiB).
	MaxBodyBytes int64
	// MaxBatchPixels caps the pixel count of one /v1/batch request
	// (default 65536). Larger scenes should be split client-side — the
	// same chunking the offline pipeline applies (§III-D).
	MaxBatchPixels int
	// MaxSeriesLen caps the per-pixel series length (default 16384).
	MaxSeriesLen int
	// MaxConcurrent caps concurrently *computing* requests on the heavy
	// endpoints (detect/trace/batch); excess requests get an immediate
	// 429 (default 2×GOMAXPROCS).
	MaxConcurrent int
	// Workers is the per-request detection worker count (default 0 =
	// GOMAXPROCS; the shared scheduler bounds total helpers regardless).
	Workers int
	// TraceDepth is how many recent request traces /debug/bfast keeps
	// (default 64; negative disables tracing).
	TraceDepth int
	// Metrics is the registry the server publishes into (default the
	// process-wide obs.Default(), which also carries the scheduler and
	// kernel-phase counters).
	Metrics *obs.Registry
	// DisableDebug removes /metrics and /debug/bfast from the mux.
	DisableDebug bool
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxBatchPixels <= 0 {
		c.MaxBatchPixels = 65536
	}
	if c.MaxSeriesLen <= 0 {
		c.MaxSeriesLen = 16384
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	return c
}

// Server is the BFAST-Monitor HTTP service. It implements http.Handler
// (usable under any mux or httptest) and owns an optional listener
// lifecycle via Serve/ListenAndServe/Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	sem      chan struct{}
	ring     *obs.TraceRing
	draining atomic.Bool

	mu      sync.Mutex
	httpSrv *http.Server

	inflight    *obs.Gauge
	rateLimited *obs.Counter
	reqBytes    *obs.Histogram
}

// New returns the service. The zero Config is production-ready.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		inflight:    cfg.Metrics.Gauge("server.inflight"),
		rateLimited: cfg.Metrics.Counter("server.rate_limited"),
		reqBytes:    cfg.Metrics.Histogram("server.request.bytes", nil),
	}
	if cfg.TraceDepth >= 0 {
		s.ring = obs.NewTraceRing(cfg.TraceDepth)
	}
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.Handle("/v1/detect", s.endpoint("detect", true, s.handleDetect))
	s.mux.Handle("/v1/trace", s.endpoint("trace", true, s.handleTrace))
	s.mux.Handle("/v1/batch", s.endpoint("batch", true, s.handleBatch))
	if !cfg.DisableDebug {
		s.mux.Handle("/metrics", cfg.Metrics.Handler())
		s.mux.HandleFunc("/debug/bfast", s.handleDebug)
	}
	return s
}

// Config returns the server's resolved configuration (defaults applied).
func (s *Server) Config() Config { return s.cfg }

// Traces returns the recent request traces (nil when tracing is off).
func (s *Server) Traces() []obs.Trace { return s.ring.Recent() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, errf(http.StatusServiceUnavailable, CodeUnavailable, "draining for shutdown"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleDebug dumps the serving state: resolved limits, in-flight count
// and the recent per-request phase traces — the request-level analogue
// of the per-pixel ProcessTrace diagnostic.
func (s *Server) handleDebug(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"limits": map[string]any{
			"max_body_bytes":   s.cfg.MaxBodyBytes,
			"max_batch_pixels": s.cfg.MaxBatchPixels,
			"max_series_len":   s.cfg.MaxSeriesLen,
			"max_concurrent":   s.cfg.MaxConcurrent,
		},
		"workers":  s.cfg.Workers,
		"inflight": s.inflight.Value(),
		"draining": s.draining.Load(),
		"traces":   s.ring.Recent(),
	})
}

// endpointFunc computes one request. It returns the response value to
// encode (ignored when it returns an error) and may record phases on tr.
type endpointFunc func(r *http.Request, tr *obs.Trace) (any, *apiError)

// endpoint wraps a handler with the serving spine: method check,
// concurrency limiting with 429 backpressure, per-endpoint
// request/outcome/latency metrics and the phase-trace ring.
func (s *Server) endpoint(name string, post bool, fn endpointFunc) http.Handler {
	m := s.cfg.Metrics
	requests := m.Counter("server." + name + ".requests")
	oks := m.Counter("server." + name + ".ok")
	clientErrs := m.Counter("server." + name + ".client_error")
	canceled := m.Counter("server." + name + ".canceled")
	latency := m.Histogram("server."+name+".latency_ms", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		tr := obs.Trace{Start: start, Endpoint: name, Bytes: r.ContentLength}
		if r.ContentLength > 0 {
			s.reqBytes.Observe(float64(r.ContentLength))
		}
		finish := func(code int, apiErr *apiError) {
			tr.Code = code
			tr.Total = time.Since(start)
			if apiErr != nil {
				tr.Err = apiErr.Code
			}
			latency.Observe(float64(tr.Total) / 1e6)
			s.ring.Record(tr)
		}
		if post && r.Method != http.MethodPost {
			e := errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
			clientErrs.Inc()
			writeError(w, e)
			finish(e.Status, e)
			return
		}
		// Backpressure: reject instead of queueing — a queued request
		// holds its whole decoded body in memory while it waits, and the
		// client's deadline keeps running; telling it "try again" now is
		// strictly cheaper for both sides.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rateLimited.Inc()
			e := errf(http.StatusTooManyRequests, CodeRateLimited, "concurrency limit %d reached", s.cfg.MaxConcurrent)
			writeError(w, e)
			finish(e.Status, e)
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		resp, apiErr := fn(r, &tr)
		switch {
		case apiErr == nil:
			oks.Inc()
			writeJSON(w, resp)
			finish(http.StatusOK, nil)
		case apiErr.Code == CodeCanceled:
			// The client is gone (or its deadline passed): the write is
			// best-effort, the record is what matters.
			canceled.Inc()
			writeError(w, apiErr)
			finish(apiErr.Status, apiErr)
		default:
			clientErrs.Inc()
			writeError(w, apiErr)
			finish(apiErr.Status, apiErr)
		}
	})
}

// ctxError classifies a kernel error: context cancellation becomes the
// canceled code, anything else is a client-input problem (the kernels
// only fail on invalid parameters).
func ctxError(ctx context.Context, err error) *apiError {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ctx.Err()) && ctx.Err() != nil {
		return errf(StatusClientClosedRequest, CodeCanceled, "request canceled: %v", err)
	}
	return errf(http.StatusBadRequest, CodeInvalidArgument, "%v", err)
}

// --- lifecycle ------------------------------------------------------------

// httpServer lazily builds the owned http.Server (timeouts chosen for
// large-batch workloads: slow header readers are cut quickly, bodies may
// stream for minutes).
func (s *Server) httpServer() *http.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpSrv == nil {
		s.httpSrv = &http.Server{
			Handler:           s,
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       5 * time.Minute,
			WriteTimeout:      5 * time.Minute,
		}
	}
	return s.httpSrv
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.httpServer().Serve(l) }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully stops the server: /v1/healthz starts reporting 503
// (so load balancers stop routing), listeners close, and in-flight
// requests are drained until they finish or ctx expires. Safe to call
// without a prior Serve (no-op beyond entering the draining state).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}
