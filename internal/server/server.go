// Package server exposes BFAST-Monitor as a production HTTP service —
// the deployment shape a monitoring system actually runs as (the paper's
// "trigger countermeasures" use case implies something is watching):
//
//	POST /v1/detect  {"series": [...], "history": 113, ...}  -> Result JSON
//	POST /v1/trace   same body                               -> process trajectory
//	POST /v1/batch   {"pixels": [[...],[...]], "history": …} -> one Result per pixel
//	GET  /v1/healthz                                         -> ok (503 while draining)
//	GET  /metrics                                            -> metric JSON (Prometheus text via Accept or ?format=prometheus)
//	GET  /debug/bfast                                        -> config, recent request traces
//	GET  /debug/bfast/traces                                 -> recent span trees, ring + persisted (?limit=, ?since=, ?request_id=)
//	GET  /debug/bfast/flight                                 -> flight-recorder bundle (tar.gz)
//
// NaN cannot be represented in JSON; missing observations are sent as
// null (the natural encoding for "no measurement").
//
// The serving spine (DESIGN.md §6): every request's context is plumbed
// into the detection kernels, so client disconnects and deadlines abandon
// the remaining steal units; heavy endpoints run under a concurrency
// limit with immediate 429 backpressure; request/batch sizes are bounded;
// errors carry stable machine-readable codes; Shutdown drains in-flight
// requests before returning.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bfast/internal/coalesce"
	"bfast/internal/nrt"
	"bfast/internal/obs"
	"bfast/internal/state"
)

// HeaderRequestID is the request/response header carrying the request's
// correlation ID. A client-supplied value (≤ 128 chars) is honored;
// otherwise the server generates one. The same ID appears on the
// response, in every log line of the request, and on its trace in
// /debug/bfast/traces — the join key across logs, traces and metrics.
const HeaderRequestID = "X-Request-ID"

const maxRequestIDLen = 128

// Config parameterizes the service. The zero value serves with
// production defaults; see the field comments for what 0 means.
type Config struct {
	// MaxBodyBytes caps a request body (default 256 MiB).
	MaxBodyBytes int64
	// MaxBatchPixels caps the pixel count of one /v1/batch request
	// (default 65536). Larger scenes should be split client-side — the
	// same chunking the offline pipeline applies (§III-D).
	MaxBatchPixels int
	// MaxSeriesLen caps the per-pixel series length (default 16384).
	MaxSeriesLen int
	// MaxConcurrent caps concurrently *computing* requests on the heavy
	// endpoints (detect/trace/batch); excess requests get an immediate
	// 429 (default 2×GOMAXPROCS).
	MaxConcurrent int
	// Workers is the per-request detection worker count (default 0 =
	// GOMAXPROCS; the shared scheduler bounds total helpers regardless).
	Workers int
	// Autotune resolves each batch request's strategy/workers/tile
	// width through the host autotuner (internal/autotune): the first
	// request per workload shape runs a sub-second micro-benchmark
	// sweep, later requests hit the in-process or on-disk cache
	// (os.UserCacheDir()/bfast/autotune.json). When resolution fails the
	// request falls back to the explicit defaults.
	Autotune bool
	// TraceDepth is how many recent request traces /debug/bfast keeps
	// (default 64; negative disables tracing).
	TraceDepth int
	// Metrics is the registry the server publishes into (default the
	// process-wide obs.Default(), which also carries the scheduler and
	// kernel-phase counters).
	Metrics *obs.Registry
	// DisableDebug removes /metrics, /debug/bfast and /debug/pprof from
	// the mux.
	DisableDebug bool
	// RetryAfterSeconds is the Retry-After hint on 429 responses
	// (default 1).
	RetryAfterSeconds int
	// Logger receives structured request logging (nil = no logging).
	// Every line carries request_id and endpoint; level follows the
	// outcome (5xx → error, 4xx → warn, else info).
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (ignored
	// when DisableDebug is set).
	EnablePprof bool
	// SampleRuntimeEvery, when positive, starts a background sampler
	// publishing runtime.* gauges (goroutines, heap, GC pauses) into
	// Metrics at that interval; Shutdown stops it.
	SampleRuntimeEvery time.Duration
	// Coalesce groups the /v1/batch request-coalescing knobs.
	Coalesce CoalesceConfig
	// NRT groups the stateful near-real-time serving knobs
	// (/v1/fit, /v1/observe, /v1/sessions).
	NRT NRTConfig
	// Diag groups the production-diagnostics knobs (see diag.go):
	// tail-sampled trace persistence, anomaly-triggered profile capture
	// and the flight-recorder bundle.
	Diag DiagConfig
	// SLO groups the per-endpoint latency objectives behind the slo.*
	// burn-rate gauges. On by default with DefaultSLOLatencyMs /
	// DefaultSLOTarget over the compute endpoints.
	SLO SLOConfig
}

// CoalesceConfig groups the /v1/batch request-coalescing knobs.
type CoalesceConfig struct {
	// Enabled routes /v1/batch through the request coalescer
	// (internal/coalesce): concurrent small requests with equivalent
	// options merge into shared detection batches so they ride full
	// tiles instead of each paying a near-empty kernel launch. Off by
	// default — responses are bit-identical either way (the repo's
	// batch-composition invariant), coalescing only changes throughput
	// and adds at most MaxWait of latency under load.
	Enabled bool
	// BatchPixels is the merged-batch size that triggers an immediate
	// flush (default 64); requests at least this large bypass the
	// queue. Ignored unless Enabled is set.
	BatchPixels int
	// MaxWait bounds how long a queued request waits for co-riders
	// before flushing anyway (default 2ms) — the worst-case latency
	// coalescing can add. Ignored unless Enabled is set.
	MaxWait time.Duration
}

// NRTConfig groups the stateful near-real-time serving knobs. The NRT
// endpoints are always mounted; this only controls durability and
// capacity.
type NRTConfig struct {
	// StateDir persists session snapshots as one file per session under
	// this directory; on boot, existing snapshots are restored, so
	// sessions survive restarts bit-identically. "" keeps sessions in
	// process memory only (they die with the process).
	StateDir string
	// SnapshotEvery persists a session after every k-th observe call
	// (default 1 = every observe; negative disables automatic snapshots
	// — Shutdown still persists).
	SnapshotEvery int
	// MaxSessions caps concurrently live sessions (default 64); /v1/fit
	// past the cap is rejected with 429 rate_limited.
	MaxSessions int
	// MaxCapacity caps a session's designed series length — history plus
	// all future monitoring dates (default MaxSeriesLen).
	MaxCapacity int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxBatchPixels <= 0 {
		c.MaxBatchPixels = 65536
	}
	if c.MaxSeriesLen <= 0 {
		c.MaxSeriesLen = 16384
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.NRT.MaxSessions <= 0 {
		c.NRT.MaxSessions = 64
	}
	if c.NRT.MaxCapacity <= 0 {
		c.NRT.MaxCapacity = c.MaxSeriesLen
	}
	return c
}

// Server is the BFAST-Monitor HTTP service. It implements http.Handler
// (usable under any mux or httptest) and owns an optional listener
// lifecycle via Serve/ListenAndServe/Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	sem      chan struct{}
	ring     *obs.TraceRing
	draining atomic.Bool

	// registered tracks every mux pattern mounted through handle();
	// VerifyRoutes pins it against RouteTable.
	registered []string
	// nrtMgr owns the stateful NRT sessions behind /v1/fit and
	// /v1/observe.
	nrtMgr *nrt.Manager

	mu      sync.Mutex
	httpSrv *http.Server

	inflight    *obs.Gauge
	rateLimited *obs.Counter
	reqBytes    *obs.Histogram

	// batcher is non-nil iff Config.Coalesce: /v1/batch detection runs
	// through it instead of calling core.DetectBatch per request.
	batcher *coalesce.Batcher
	// The diagnostics layer (diag.go). tail and prof are nil without a
	// Diag.Dir, slo is nil when SLO.Disabled — all are nil-safe.
	tail     *obs.TailSampler
	slo      *obs.SLOMonitor
	prof     *obs.ProfCapture
	stopSLO  func()
	stopProf func()
	// bodyPool recycles request-body read buffers; nothing decoded out of
	// a body aliases its bytes (both parsers copy values out), so the
	// buffer is reusable the moment decoding returns.
	bodyPool sync.Pool
	// packPool recycles /v1/batch pack buffers (the flat NaN-encoded
	// pixel matrix) across requests; the batcher copies pixels out at
	// enqueue, so a buffer is reusable the moment detection returns.
	packPool sync.Pool

	stopSampler func()
}

// New returns the service. The zero Config is production-ready. It
// errors when the NRT state directory cannot be opened or when the mux
// and RouteTable drift (a programming error this constructor turns into
// a boot failure).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		inflight:    cfg.Metrics.Gauge("server.inflight"),
		rateLimited: cfg.Metrics.Counter("server.rate_limited"),
		reqBytes:    cfg.Metrics.Histogram("server.request.bytes", nil),
	}
	if cfg.TraceDepth >= 0 {
		s.ring = obs.NewTraceRing(cfg.TraceDepth)
	}
	if cfg.Coalesce.Enabled {
		s.batcher = coalesce.New(coalesce.Config{
			BatchPixels: cfg.Coalesce.BatchPixels,
			MaxWait:     cfg.Coalesce.MaxWait,
			Metrics:     cfg.Metrics,
			Traces:      s.ring,
		})
	}

	// NRT durability: a state directory makes sessions restart-proof;
	// without one they live (and die) with the process.
	var store state.Store
	if cfg.NRT.StateDir != "" {
		fs, err := state.NewFileStore(cfg.NRT.StateDir, cfg.Metrics)
		if err != nil {
			return nil, err
		}
		store = fs
	}
	s.nrtMgr = nrt.NewManager(nrt.Config{
		Store:         store,
		Metrics:       cfg.Metrics,
		SnapshotEvery: cfg.NRT.SnapshotEvery,
	})
	if store != nil {
		// Boot-time restore: New has no caller context by design (the
		// process is not serving yet, so there is nothing to cancel).
		//lint:allow ctxfirst -- constructor-time restore precedes any request context
		if _, err := s.nrtMgr.Restore(context.Background()); err != nil {
			return nil, fmt.Errorf("server: restoring NRT sessions: %w", err)
		}
	}

	// Production diagnostics: tail-sampled trace persistence, SLO
	// burn-rate gauges, anomaly-triggered profile capture (diag.go).
	if err := s.initDiagnostics(); err != nil {
		return nil, fmt.Errorf("server: diagnostics: %w", err)
	}

	// Table-driven registration: every path the RouteTable declares for
	// this configuration gets its handler mounted through handle(), and
	// VerifyRoutes then pins mux against table.
	handlers := map[string]http.Handler{
		"/v1/healthz":          http.HandlerFunc(s.handleHealthz),
		"/v1/detect":           s.endpoint("detect", "POST", true, s.handleDetect),
		"/v1/trace":            s.endpoint("trace", "POST", true, s.handleTrace),
		"/v1/batch":            s.endpoint("batch", "POST", true, s.handleBatch),
		"/v1/fit":              s.endpoint("fit", "POST", true, s.handleFit),
		"/v1/observe":          s.endpoint("observe", "POST", true, s.handleObserve),
		"/v1/sessions":         s.endpoint("sessions", "GET,DELETE", false, s.handleSessions),
		"/metrics":             cfg.Metrics.Handler(),
		"/debug/bfast":         http.HandlerFunc(s.handleDebug),
		"/debug/bfast/traces":  http.HandlerFunc(s.handleTraces),
		"/debug/bfast/flight":  http.HandlerFunc(s.handleFlight),
		"/debug/pprof/":        http.HandlerFunc(pprof.Index),
		"/debug/pprof/cmdline": http.HandlerFunc(pprof.Cmdline),
		"/debug/pprof/profile": http.HandlerFunc(pprof.Profile),
		"/debug/pprof/symbol":  http.HandlerFunc(pprof.Symbol),
		"/debug/pprof/trace":   http.HandlerFunc(pprof.Trace),
	}
	for _, path := range declaredPaths(cfg) {
		h, ok := handlers[path]
		if !ok {
			return nil, fmt.Errorf("server: route %q declared in RouteTable but has no handler", path)
		}
		s.handle(path, h)
	}
	if err := s.VerifyRoutes(); err != nil {
		return nil, err
	}

	if cfg.SampleRuntimeEvery > 0 {
		s.stopSampler = obs.StartRuntimeSampler(cfg.Metrics, cfg.SampleRuntimeEvery)
	}
	return s, nil
}

// handle mounts a pattern and records it for VerifyRoutes. All mux
// registration funnels through here — that is what makes the recorded
// set authoritative.
func (s *Server) handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
	s.registered = append(s.registered, pattern)
}

// requestID returns the client-supplied correlation ID when acceptable,
// otherwise a fresh random one.
func requestID(r *http.Request) string {
	if id := r.Header.Get(HeaderRequestID); id != "" && len(id) <= maxRequestIDLen {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// Config returns the server's resolved configuration (defaults applied).
func (s *Server) Config() Config { return s.cfg }

// Traces returns the recent request traces (nil when tracing is off).
func (s *Server) Traces() []obs.Trace { return s.ring.Recent() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, errf(http.StatusServiceUnavailable, CodeUnavailable, "draining for shutdown"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleDebug dumps the serving state: resolved limits, in-flight count
// and the recent per-request phase traces — the request-level analogue
// of the per-pixel ProcessTrace diagnostic.
func (s *Server) handleDebug(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"limits": map[string]any{
			"max_body_bytes":   s.cfg.MaxBodyBytes,
			"max_batch_pixels": s.cfg.MaxBatchPixels,
			"max_series_len":   s.cfg.MaxSeriesLen,
			"max_concurrent":   s.cfg.MaxConcurrent,
		},
		"workers":  s.cfg.Workers,
		"coalesce": s.batcher != nil,
		"nrt": map[string]any{
			"state_dir":      s.cfg.NRT.StateDir,
			"snapshot_every": s.cfg.NRT.SnapshotEvery,
			"max_sessions":   s.cfg.NRT.MaxSessions,
			"max_capacity":   s.cfg.NRT.MaxCapacity,
			"sessions":       s.nrtMgr.List(),
		},
		"diag": map[string]any{
			"dir":            s.cfg.Diag.Dir,
			"tail_sampling":  s.tail != nil,
			"profile_watch":  s.prof != nil,
			"slo_objectives": s.slo.Objectives(),
		},
		"inflight": s.inflight.Value(),
		"draining": s.draining.Load(),
		"traces":   s.ring.Recent(),
	})
}

// endpointFunc computes one request. It returns the response value to
// encode (ignored when it returns an error); phase timings are emitted
// as spans on the request context.
type endpointFunc func(r *http.Request, tr *obs.Trace) (any, *apiError)

// endpoint wraps a handler with the serving spine: request-ID
// correlation, method check (methods is a comma-separated allow list),
// concurrency limiting with 429 backpressure on heavy endpoints,
// per-endpoint request/outcome/latency metrics, span tracing and the
// trace ring, and structured request logging.
func (s *Server) endpoint(name, methods string, heavy bool, fn endpointFunc) http.Handler {
	m := s.cfg.Metrics
	requests := m.Counter("server." + name + ".requests")
	oks := m.Counter("server." + name + ".ok")
	clientErrs := m.Counter("server." + name + ".client_error")
	canceled := m.Counter("server." + name + ".canceled")
	latency := m.Histogram("server."+name+".latency_ms", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		id := requestID(r)
		w.Header().Set(HeaderRequestID, id)
		lg := s.cfg.Logger.With("request_id", id, "endpoint", name)
		tr := obs.Trace{RequestID: id, Start: start, Endpoint: name, Bytes: r.ContentLength}
		// Span tracing rides the trace ring's switch: with tracing off the
		// context carries no span and every StartSpan below it is a no-op.
		var root *obs.Span
		if s.ring != nil {
			root = obs.NewSpan("server." + name)
			r = r.WithContext(obs.ContextWithSpan(r.Context(), root))
		}
		if r.ContentLength > 0 {
			s.reqBytes.Observe(float64(r.ContentLength))
		}
		finish := func(code int, apiErr *apiError) {
			tr.Code = code
			tr.Total = time.Since(start)
			if apiErr != nil {
				tr.Err = apiErr.Code
			}
			// The exemplar puts this request's ID on the latency bucket it
			// landed in, so a burning SLO points at a concrete trace.
			latency.ObserveExemplar(float64(tr.Total)/1e6, id)
			if root != nil {
				root.End()
				node := root.Node()
				tr.Spans = &node
			}
			s.ring.Record(tr)
			// Tail sampling sees the completed trace — outcome and latency
			// known — and persists it when it is an error, slow, or a
			// head-sample baseline.
			s.tail.Offer(tr)
			level := slog.LevelInfo
			switch {
			case code >= 500:
				level = slog.LevelError
			case code >= 400:
				level = slog.LevelWarn
			}
			attrs := []any{
				"code", code, "err", tr.Err, "pixels", tr.Pixels,
				"bytes", tr.Bytes, "duration", tr.Total,
			}
			if tr.Session != "" {
				attrs = append(attrs, "session", tr.Session)
			}
			lg.Log(r.Context(), level, "request served", attrs...)
		}
		if !methodAllowed(methods, r.Method) {
			e := errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "%s required", methods)
			clientErrs.Inc()
			writeError(w, e)
			finish(e.Status, e)
			return
		}
		if heavy {
			// Backpressure: reject instead of queueing — a queued request
			// holds its whole decoded body in memory while it waits, and the
			// client's deadline keeps running; telling it "try again" now is
			// strictly cheaper for both sides.
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.rateLimited.Inc()
				e := errf(http.StatusTooManyRequests, CodeRateLimited, "concurrency limit %d reached", s.cfg.MaxConcurrent)
				w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
				writeError(w, e)
				finish(e.Status, e)
				return
			}
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		resp, apiErr := fn(r, &tr)
		switch {
		case apiErr == nil:
			oks.Inc()
			_, sp := obs.StartSpan(r.Context(), "encode")
			writeJSON(w, resp)
			sp.End()
			finish(http.StatusOK, nil)
		case apiErr.Code == CodeCanceled:
			// The client is gone (or its deadline passed): the write is
			// best-effort, the record is what matters.
			canceled.Inc()
			writeError(w, apiErr)
			finish(apiErr.Status, apiErr)
		default:
			clientErrs.Inc()
			writeError(w, apiErr)
			finish(apiErr.Status, apiErr)
		}
	})
}

// methodAllowed reports whether method appears in the comma-separated
// allow list.
func methodAllowed(methods, method string) bool {
	for _, m := range strings.Split(methods, ",") {
		if m == method {
			return true
		}
	}
	return false
}

// ctxError classifies a kernel error: context cancellation becomes the
// canceled code, anything else is a client-input problem (the kernels
// only fail on invalid parameters).
func ctxError(ctx context.Context, err error) *apiError {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ctx.Err()) && ctx.Err() != nil {
		return errf(StatusClientClosedRequest, CodeCanceled, "request canceled: %v", err)
	}
	return errf(http.StatusBadRequest, CodeInvalidArgument, "%v", err)
}

// --- lifecycle ------------------------------------------------------------

// httpServer lazily builds the owned http.Server (timeouts chosen for
// large-batch workloads: slow header readers are cut quickly, bodies may
// stream for minutes).
func (s *Server) httpServer() *http.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpSrv == nil {
		s.httpSrv = &http.Server{
			Handler:           s,
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       5 * time.Minute,
			WriteTimeout:      5 * time.Minute,
		}
	}
	return s.httpSrv
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.httpServer().Serve(l) }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully stops the server: /v1/healthz starts reporting 503
// (so load balancers stop routing), listeners close, and in-flight
// requests are drained until they finish or ctx expires. Safe to call
// without a prior Serve (no-op beyond entering the draining state).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.stopSampler != nil {
		s.stopSampler()
	}
	// Flush pending coalescing queues now instead of waiting out their
	// deadline timers; requests still in flight after this run direct
	// (unbatched but correct), so drain strands no waiter.
	if s.batcher != nil {
		s.batcher.Close()
	}
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	// Persist every NRT session after the drain, so the snapshots carry
	// the last observe each request saw — the restart-durability
	// contract (a rebooted server resumes bit-identically).
	if nerr := s.nrtMgr.Close(ctx); err == nil {
		err = nerr
	}
	// Diagnostics go down last: the drain above finished every in-flight
	// request, so the trace log has its final offers before it closes.
	s.stopDiagnostics()
	return err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}
