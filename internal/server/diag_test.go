package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bfast/internal/obs"
)

// tracesResponse mirrors the /debug/bfast/traces JSON: merged entries
// carrying their source ("ring" or "disk") and, for disk entries, the
// tail-sampling reason.
type tracesResponse struct {
	Traces []struct {
		Source string `json:"source"`
		Reason string `json:"reason"`
		obs.Trace
	} `json:"traces"`
}

// errorRequest issues a request that fails validation (missing series)
// under the given correlation ID — a guaranteed tail-sample survivor.
func errorRequest(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	resp, _ := postWithHeaders(t, ts, "/v1/detect", map[string]any{"history": 5},
		map[string]string{HeaderRequestID: id})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("error request: %d, want 400", resp.StatusCode)
	}
}

// TestTracesLimitSinceAndValidation: the merged traces endpoint defaults
// to 50, honors ?limit= and ?since=, and rejects malformed parameters.
func TestTracesLimitSinceAndValidation(t *testing.T) {
	dir := t.TempDir()
	ts := httptest.NewServer(mustServer(t, Config{
		Metrics: obs.NewRegistry(),
		Diag:    DiagConfig{Dir: dir, DisableProfiles: true},
	}))
	defer ts.Close()

	for _, id := range []string{"lim-1", "lim-2", "lim-3"} {
		errorRequest(t, ts, id)
	}

	resp, body := get(t, ts, "/debug/bfast/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces: %d %s", resp.StatusCode, body)
	}
	var tr tracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decode traces: %v\n%s", err, body)
	}
	if len(tr.Traces) != 3 {
		t.Fatalf("default listing has %d traces, want 3", len(tr.Traces))
	}
	for _, e := range tr.Traces {
		if e.Source != "ring" {
			t.Fatalf("live-server trace source = %q, want ring (ring wins over disk)", e.Source)
		}
	}

	resp, body = get(t, ts, "/debug/bfast/traces?limit=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit=2: %d", resp.StatusCode)
	}
	tr = tracesResponse{}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(tr.Traces))
	}
	// The cap keeps the newest entries.
	if tr.Traces[1].RequestID != "lim-3" {
		t.Fatalf("limit kept %q newest, want lim-3", tr.Traces[1].RequestID)
	}

	// A future ?since= filters everything out.
	resp, body = get(t, ts, "/debug/bfast/traces?since=2100-01-01T00:00:00Z")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("since: %d", resp.StatusCode)
	}
	tr = tracesResponse{}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 0 {
		t.Fatalf("future since returned %d traces", len(tr.Traces))
	}

	for _, bad := range []string{"?limit=0", "?limit=-3", "?limit=abc", "?since=yesterday"} {
		resp, body = get(t, ts, "/debug/bfast/traces"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %s, want 400", bad, resp.StatusCode, body)
		}
	}
}

// TestTracesMergeAcrossRestart is the tentpole's acceptance path: an
// error trace persisted by one server process is still readable from
// /debug/bfast/traces after a restart over the same diagnostics dir —
// as a "disk" entry with its sampling reason — and resolvable by
// request_id.
func TestTracesMergeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Metrics: obs.NewRegistry(), Diag: DiagConfig{Dir: dir, DisableProfiles: true}}

	srvA := mustServer(t, cfg)
	tsA := httptest.NewServer(srvA)
	errorRequest(t, tsA, "persist-me")
	tsA.Close()
	if err := srvA.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	cfg.Metrics = obs.NewRegistry()
	tsB := httptest.NewServer(mustServer(t, cfg))
	defer tsB.Close()

	resp, body := get(t, tsB, "/debug/bfast/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces after restart: %d %s", resp.StatusCode, body)
	}
	var tr tracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range tr.Traces {
		if e.RequestID == "persist-me" {
			found = true
			if e.Source != "disk" || e.Reason != "error" {
				t.Fatalf("restarted trace = source %q reason %q, want disk/error", e.Source, e.Reason)
			}
		}
	}
	if !found {
		t.Fatalf("persisted trace lost across restart:\n%s", body)
	}

	// request_id lookup falls through the (empty) ring to the log.
	resp, body = get(t, tsB, "/debug/bfast/traces?request_id=persist-me")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request_id lookup: %d %s", resp.StatusCode, body)
	}
	var one obs.Trace
	if err := json.Unmarshal(body, &one); err != nil || one.RequestID != "persist-me" {
		t.Fatalf("request_id lookup body = %s (%v)", body, err)
	}
	if resp, _ := get(t, tsB, "/debug/bfast/traces?request_id=never-existed"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown request_id: %d, want 404", resp.StatusCode)
	}
}

// TestFlightEndpoint: the bundle downloads as a well-formed tar.gz with
// every live-state member, and non-GET methods are rejected.
func TestFlightEndpoint(t *testing.T) {
	dir := t.TempDir()
	ts := httptest.NewServer(mustServer(t, Config{
		Metrics: obs.NewRegistry(),
		Diag:    DiagConfig{Dir: dir, DisableProfiles: true},
	}))
	defer ts.Close()
	errorRequest(t, ts, "flight-err")

	resp, body := get(t, ts, "/debug/bfast/flight")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("flight Content-Type = %q", ct)
	}
	gz, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("flight body is not gzip: %v", err)
	}
	members := map[string]bool{}
	tarr := tar.NewReader(gz)
	for {
		hdr, err := tarr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("flight tar: %v", err)
		}
		members[hdr.Name] = true
	}
	for _, want := range []string{
		"metrics.json", "metrics.prom", "traces_ring.json",
		"traces_persisted.jsonl", "config.json", "runtime.json",
		"nrt_sessions.json", "slo_objectives.json", "manifest.json",
	} {
		if !members[want] {
			t.Fatalf("flight bundle missing %s; have %v", want, members)
		}
	}

	resp, _ = postWithHeaders(t, ts, "/debug/bfast/flight", map[string]any{}, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST flight: %d, want 405", resp.StatusCode)
	}
}

// TestSessionStitchingInTraces: /v1/fit and /v1/observe traces carry
// the NRT session ID, so an operator can pull every trace that touched
// a session out of the merged listing.
func TestSessionStitchingInTraces(t *testing.T) {
	ds := nrtScene(t)
	n := ds.Spec.History
	ts := httptest.NewServer(mustServer(t, Config{Metrics: obs.NewRegistry()}))
	defer ts.Close()

	var fit struct {
		Session string `json:"session"`
	}
	resp, raw := postJSON(t, ts, "/v1/fit", map[string]any{
		"pixels": jsonRows(ds, 0, n, true), "history": n, "capacity": ds.Spec.N,
	}, &fit)
	if resp.StatusCode != http.StatusOK || fit.Session == "" {
		t.Fatalf("fit: %d %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts, "/v1/observe", map[string]any{
		"session": fit.Session, "dates": jsonRows(ds, n, n+2, false),
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d %s", resp.StatusCode, raw)
	}

	_, body := get(t, ts, "/debug/bfast/traces")
	var tr tracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	stitched := map[string]bool{}
	for _, e := range tr.Traces {
		if e.Session == fit.Session {
			stitched[e.Endpoint] = true
		}
	}
	if !stitched["fit"] || !stitched["observe"] {
		t.Fatalf("session %s stitched endpoints = %v, want fit and observe\n%s",
			fit.Session, stitched, body)
	}
}

// TestMetricsExemplarExposed: after real traffic the Prometheus
// exposition carries OpenMetrics exemplar suffixes whose trace IDs
// resolve against /debug/bfast/traces.
func TestMetricsExemplarExposed(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Config{Metrics: obs.NewRegistry()}))
	defer ts.Close()
	rng := rand.New(rand.NewSource(7))

	const id = "exemplar-req-1"
	resp, _ := postWithHeaders(t, ts, "/v1/detect",
		map[string]any{"series": jsonSeries(rng, 120, 70, 0.2), "history": 60},
		map[string]string{HeaderRequestID: id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d", resp.StatusCode)
	}

	_, body := get(t, ts, "/metrics?format=prometheus")
	if !strings.Contains(string(body), `# {trace_id="`+id+`"}`) {
		t.Fatalf("/metrics missing the exemplar for %s:\n%s", id, body)
	}

	resp, _ = get(t, ts, "/debug/bfast/traces?request_id="+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exemplar trace ID does not resolve: %d", resp.StatusCode)
	}
}
