package leakcheck

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeTB captures Errorf calls and runs cleanups on demand, standing in
// for *testing.T so the harness's verdicts can be asserted.
type fakeTB struct {
	cleanups []func()
	errors   []string
}

func (f *fakeTB) Cleanup(fn func())                 { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(format string, args ...any) { f.errors = append(f.errors, format) }
func (f *fakeTB) Helper()                           {}
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func shortWindow(t *testing.T) {
	t.Helper()
	old := retryWindow
	retryWindow = 200 * time.Millisecond
	t.Cleanup(func() { retryWindow = old })
}

func TestDetectsLeakedGoroutine(t *testing.T) {
	shortWindow(t)
	ft := &fakeTB{}
	Check(ft)
	block := make(chan struct{})
	go func() { <-block }()
	ft.runCleanups()
	close(block)
	if len(ft.errors) == 0 {
		t.Fatal("leaked goroutine not reported")
	}
}

func TestCleanShutdownPasses(t *testing.T) {
	ft := &fakeTB{}
	Check(ft)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	ft.runCleanups()
	if len(ft.errors) != 0 {
		t.Fatalf("clean goroutine reported as leak: %v", ft.errors)
	}
}

func TestBaselineGoroutineIgnored(t *testing.T) {
	block := make(chan struct{})
	go func() { <-block }() // born before Check: baseline, not a leak
	defer close(block)
	ft := &fakeTB{}
	Check(ft)
	ft.runCleanups()
	if len(ft.errors) != 0 {
		t.Fatalf("pre-existing goroutine reported as leak: %v", ft.errors)
	}
}

// TestHTTPKeepAliveFiltered pins the filter that makes the harness
// usable in the server suite: an httptest client's idle keep-alive
// connection leaves persistConn read/write loops behind, and those
// must not fail the test.
func TestHTTPKeepAliveFiltered(t *testing.T) {
	ft := &fakeTB{}
	Check(ft)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	ft.runCleanups()
	for _, e := range ft.errors {
		if strings.Contains(e, "persistConn") {
			t.Fatalf("keep-alive goroutine not filtered: %v", ft.errors)
		}
	}
	if len(ft.errors) != 0 {
		t.Fatalf("unexpected leaks: %v", ft.errors)
	}
}

func TestSnapshotParsesStanzas(t *testing.T) {
	gs := snapshot()
	if len(gs) == 0 {
		t.Fatal("snapshot saw no goroutines")
	}
	for _, g := range gs {
		if g.id == "" || g.state == "" {
			t.Fatalf("malformed stanza: %+v", g)
		}
	}
}
