// Package leakcheck is the runtime half of the golifecycle contract:
// the analyzer proves statically that every goroutine has a lifecycle
// tie, and this harness verifies dynamically that test suites actually
// wind their goroutines down. Check snapshots the live goroutines at
// the start of a test and diffs against them at cleanup — any goroutine
// born during the test that is still alive after its shutdown paths ran
// is reported with its stack.
//
// The diff is by goroutine ID against the baseline, so long-lived
// process goroutines (the runtime's own workers, other packages'
// singletons started before the test) never false-positive. On top of
// the baseline, stacks matching known lazily-reaped runtime machinery —
// testing harness goroutines, os/signal watchers, net/http keep-alive
// connection loops from httptest clients, DNS resolver workers — are
// filtered, because their teardown is asynchronous by design and
// outside the code under test. Everything else must exit within the
// grace window (goroutine teardown races the test's own cleanup, so the
// check polls instead of sampling once).
//
// Usage, first line of a test or suite helper:
//
//	func TestServer(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the slice of testing.TB the harness needs; the indirection
// keeps the package importable from non-test helpers without pulling
// testing into production binaries' dependency graphs in a load-bearing
// way.
type TB interface {
	Cleanup(func())
	Errorf(format string, args ...any)
	Helper()
}

// retryWindow bounds how long Cleanup waits for goroutines that are
// legitimately mid-shutdown when the test body returns. A variable so
// the package's own tests can shrink the window.
var retryWindow = 2 * time.Second

// Check records the current goroutines and registers a cleanup that
// fails the test if new, unfiltered goroutines survive it.
func Check(t TB) {
	t.Helper()
	base := make(map[string]bool)
	for _, g := range snapshot() {
		base[g.id] = true
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(retryWindow)
		var leaked []goroutine
		for {
			leaked = leaked[:0]
			for _, g := range snapshot() {
				if !base[g.id] && !ignored(g) {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine %s [%s]:\n%s", g.id, g.state, g.stack)
		}
	})
}

// goroutine is one parsed stanza of runtime.Stack output.
type goroutine struct {
	id    string
	state string
	stack string
}

// snapshot parses `runtime.Stack(all=true)` into per-goroutine stanzas.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		header, rest, _ := strings.Cut(stanza, "\n")
		var id int
		var state string
		if _, err := fmt.Sscanf(header, "goroutine %d [%s", &id, &state); err != nil {
			continue
		}
		out = append(out, goroutine{
			id:    fmt.Sprintf("%d", id),
			state: strings.TrimRight(state, ":]"),
			stack: rest,
		})
	}
	return out
}

// ignoredFrames are stack substrings of goroutines whose lazy teardown
// is owned by the runtime or stdlib, not by the code under test.
var ignoredFrames = []string{
	"testing.RunTests",
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.tRunner",
	"runtime.goexit0",
	"runtime.gcBgMarkWorker",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.runfinq",
	"os/signal.signal_recv",
	"os/signal.loop",
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net.(*Resolver)",
	"internal/singleflight.(*Group)",
}

func ignored(g goroutine) bool {
	for _, f := range ignoredFrames {
		if strings.Contains(g.stack, f) {
			return true
		}
	}
	return false
}
