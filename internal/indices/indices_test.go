package indices

import (
	"context"

	"math"
	"testing"
	"testing/quick"

	"bfast/internal/baseline"
	"bfast/internal/core"
	"bfast/internal/cube"
)

func TestNDMIKnownValues(t *testing.T) {
	if got := NDMI(0.3, 0.1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("NDMI(0.3,0.1) = %v, want 0.5", got)
	}
	if got := NDMI(0.1, 0.3); math.Abs(got+0.5) > 1e-12 {
		t.Fatalf("NDMI(0.1,0.3) = %v, want -0.5", got)
	}
}

func TestNDVIKnownValues(t *testing.T) {
	if got := NDVI(0.5, 0.1); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Fatalf("NDVI(0.5,0.1) = %v", got)
	}
}

func TestIndicesNaNPropagation(t *testing.T) {
	nan := math.NaN()
	for _, f := range []func(float64, float64) float64{NDMI, NDVI} {
		if !math.IsNaN(f(nan, 0.5)) || !math.IsNaN(f(0.5, nan)) {
			t.Fatal("NaN input must give NaN output")
		}
		if !math.IsNaN(f(0, 0)) {
			t.Fatal("zero denominator must give NaN")
		}
	}
}

func TestIndicesBoundedProperty(t *testing.T) {
	// For non-negative reflectances the indices lie in [-1, 1].
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		v := NDMI(a, b)
		if math.IsNaN(v) {
			return a+b == 0 || math.IsNaN(a) || math.IsNaN(b)
		}
		return v >= -1-1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesNDMI(t *testing.T) {
	nir := []float64{0.3, math.NaN(), 0.4}
	swir := []float64{0.1, 0.2, 0.4}
	out := make([]float64, 3)
	if err := SeriesNDMI(nir, swir, out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.5) > 1e-12 || !math.IsNaN(out[1]) || out[2] != 0 {
		t.Fatalf("SeriesNDMI = %v", out)
	}
	if err := SeriesNDMI(nir, swir[:2], out); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestCubeNDMIShapeMismatch(t *testing.T) {
	a, _ := cube.New(2, 2, 3)
	b, _ := cube.New(2, 2, 4)
	if _, err := CubeNDMI(a, b); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestGenerateBandSceneValidation(t *testing.T) {
	if _, err := GenerateBandScene(BandSceneSpec{Width: 0, Height: 2, Dates: 10, History: 5}); err == nil {
		t.Fatal("invalid shape must fail")
	}
	if _, err := GenerateBandScene(BandSceneSpec{Width: 2, Height: 2, Dates: 10, History: 10}); err == nil {
		t.Fatal("invalid history must fail")
	}
}

func TestBandSceneToDetectionEndToEnd(t *testing.T) {
	// Full paper pipeline: bands -> NDMI -> BFAST-Monitor -> breaks.
	spec := BandSceneSpec{
		Width: 24, Height: 24, Dates: 184, History: 92,
		CloudFrac: 0.5, BreakFrac: 0.3, Seed: 5,
	}
	scene, err := GenerateBandScene(spec)
	if err != nil {
		t.Fatal(err)
	}
	ndmi, err := CubeNDMI(scene.NIR, scene.SWIR)
	if err != nil {
		t.Fatal(err)
	}
	// Cloud mask must propagate: NaN fraction ≈ CloudFrac.
	nan := 0
	for _, v := range ndmi.Values {
		if math.IsNaN(v) {
			nan++
		}
	}
	frac := float64(nan) / float64(len(ndmi.Values))
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("NDMI NaN fraction %v, want ≈0.5", frac)
	}

	b, err := core.NewBatch(ndmi.Pixels(), ndmi.Dates, ndmi.Values)
	if err != nil {
		t.Fatal(err)
	}
	results, err := baseline.CLike(context.Background(), b, core.DefaultOptions(spec.History), 0)
	if err != nil {
		t.Fatal(err)
	}
	tp, fp, fn := 0, 0, 0
	for i, r := range results {
		detected := r.HasBreak() && r.MosumMean < 0
		truth := scene.TrueBreak[i] >= 0
		switch {
		case detected && truth:
			tp++
		case detected && !truth:
			fp++
		case !detected && truth:
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("no deforestation detected through the band pipeline")
	}
	recall := float64(tp) / float64(tp+fn)
	if recall < 0.9 {
		t.Fatalf("recall %.2f too low (tp=%d fn=%d fp=%d)", recall, tp, fn, fp)
	}
	precision := float64(tp) / float64(tp+fp)
	if precision < 0.6 {
		t.Fatalf("precision %.2f too low (tp=%d fp=%d)", precision, tp, fp)
	}
}
