// Package indices implements the vegetation-index preprocessing the paper
// applies before change detection (§II-A): multi-spectral reflectance
// bands are reduced to per-pixel index series such as the Normalized
// Difference Moisture Index (NDMI, used for the paper's forest-cover
// analyses) or NDVI. Index functions propagate missing values: a NaN in
// either input band masks the output, which is how cloud masks flow from
// the band level into the detection pipeline.
package indices

import (
	"fmt"
	"math"

	"bfast/internal/cube"
)

// normalizedDifference computes (a−b)/(a+b) with NaN propagation; a zero
// denominator also yields NaN (no radiometric information).
func normalizedDifference(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	den := a + b
	//lint:allow nanguard -- exact-zero denominator guard; NaN operands already returned above
	if den == 0 {
		return math.NaN()
	}
	return (a - b) / den
}

// NDMI computes the Normalized Difference Moisture Index from
// near-infrared and shortwave-infrared reflectances:
// (NIR − SWIR)/(NIR + SWIR). Wetness-related indices like NDMI are the
// paper's choice for deforestation monitoring (Schultz et al. 2016).
func NDMI(nir, swir float64) float64 { return normalizedDifference(nir, swir) }

// NDVI computes the Normalized Difference Vegetation Index from
// near-infrared and red reflectances: (NIR − Red)/(NIR + Red).
func NDVI(nir, red float64) float64 { return normalizedDifference(nir, red) }

// SeriesNDMI fills out[i] = NDMI(nir[i], swir[i]); the three slices must
// have equal length (out may alias an input).
func SeriesNDMI(nir, swir, out []float64) error {
	return applySeries(nir, swir, out, NDMI)
}

// SeriesNDVI fills out[i] = NDVI(nir[i], red[i]).
func SeriesNDVI(nir, red, out []float64) error {
	return applySeries(nir, red, out, NDVI)
}

func applySeries(a, b, out []float64, f func(float64, float64) float64) error {
	if len(a) != len(b) || len(a) != len(out) {
		return fmt.Errorf("indices: length mismatch %d/%d/%d", len(a), len(b), len(out))
	}
	for i := range a {
		out[i] = f(a[i], b[i])
	}
	return nil
}

// CubeNDMI builds the NDMI cube from NIR and SWIR band cubes of identical
// shape — the preprocessing step that turns a two-band image stack into
// the single-index cube the detector consumes.
func CubeNDMI(nir, swir *cube.Cube) (*cube.Cube, error) {
	return applyCube(nir, swir, NDMI)
}

// CubeNDVI builds the NDVI cube from NIR and red band cubes.
func CubeNDVI(nir, red *cube.Cube) (*cube.Cube, error) {
	return applyCube(nir, red, NDVI)
}

func applyCube(a, b *cube.Cube, f func(float64, float64) float64) (*cube.Cube, error) {
	if a.Width != b.Width || a.Height != b.Height || a.Dates != b.Dates {
		return nil, fmt.Errorf("indices: cube shapes differ: %dx%dx%d vs %dx%dx%d",
			a.Width, a.Height, a.Dates, b.Width, b.Height, b.Dates)
	}
	out, err := cube.New(a.Width, a.Height, a.Dates)
	if err != nil {
		return nil, err
	}
	for i := range a.Values {
		out.Values[i] = f(a.Values[i], b.Values[i])
	}
	return out, nil
}
