package indices

import (
	"fmt"
	"math"
	"math/rand"

	"bfast/internal/cube"
)

// BandSceneSpec describes a synthetic two-band reflectance scene: the
// multispectral source data the paper's pipeline starts from. Healthy
// vegetation has high NIR and low SWIR reflectance; deforestation drops
// NIR and raises SWIR, moving NDMI down. Clouds mask both bands at once
// (one acquisition, one cloud), which is exactly the correlated-missing
// structure the index inherits.
type BandSceneSpec struct {
	// Width, Height, Dates give the cube shape.
	Width, Height, Dates int
	// History marks the monitoring start (breaks are injected after it).
	History int
	// CloudFrac is the per-observation cloud probability.
	CloudFrac float64
	// BreakFrac is the fraction of deforested pixels.
	BreakFrac float64
	// Noise is the per-band reflectance noise sigma (default 0.01).
	Noise float64
	// Seed makes generation deterministic (default 1).
	Seed int64
}

// BandScene holds the generated band cubes and the break ground truth.
type BandScene struct {
	NIR, SWIR *cube.Cube
	// TrueBreak[i] is the absolute break date of pixel i, or -1.
	TrueBreak []int
}

// GenerateBandScene builds a synthetic two-band Landsat-like scene.
func GenerateBandScene(spec BandSceneSpec) (*BandScene, error) {
	if spec.Width <= 0 || spec.Height <= 0 || spec.Dates <= 0 {
		return nil, fmt.Errorf("indices: invalid scene shape %dx%dx%d", spec.Width, spec.Height, spec.Dates)
	}
	if spec.History <= 0 || spec.History >= spec.Dates {
		return nil, fmt.Errorf("indices: history %d out of range", spec.History)
	}
	//lint:allow nanguard -- exact zero-value config default for a spec field, not series data
	if spec.Noise == 0 {
		spec.Noise = 0.01
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	nir, err := cube.New(spec.Width, spec.Height, spec.Dates)
	if err != nil {
		return nil, err
	}
	swir, err := cube.New(spec.Width, spec.Height, spec.Dates)
	if err != nil {
		return nil, err
	}
	pixels := spec.Width * spec.Height
	scene := &BandScene{NIR: nir, SWIR: swir, TrueBreak: make([]int, pixels)}
	monLen := spec.Dates - spec.History
	for i := 0; i < pixels; i++ {
		scene.TrueBreak[i] = -1
		if spec.BreakFrac > 0 && rng.Float64() < spec.BreakFrac {
			scene.TrueBreak[i] = spec.History + rng.Intn(monLen/2+1)
		}
		for t := 0; t < spec.Dates; t++ {
			if rng.Float64() < spec.CloudFrac {
				continue // both bands stay NaN: a cloud hides the ground
			}
			season := 0.05 * math.Sin(2*math.Pi*float64(t+1)/23)
			// Healthy forest: NIR ~0.35, SWIR ~0.15 → NDMI ~ +0.4.
			nirV := 0.35 + season + rng.NormFloat64()*spec.Noise
			swirV := 0.15 - season/2 + rng.NormFloat64()*spec.Noise
			if b := scene.TrueBreak[i]; b >= 0 && t >= b {
				// Cleared ground: NIR drops, SWIR rises → NDMI ~ -0.1.
				nirV -= 0.12
				swirV += 0.10
			}
			x, y := i%spec.Width, i/spec.Width
			nir.Set(x, y, t, clamp01(nirV))
			swir.Set(x, y, t, clamp01(swirV))
		}
	}
	return scene, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
