package pipeline

import (
	"math/rand"
	"testing"
	"time"
)

func TestScheduleRoundRobinUniform(t *testing.T) {
	times := make([]time.Duration, 100)
	for i := range times {
		times[i] = time.Second
	}
	res, err := ScheduleImages(times, ClusterConfig{Devices: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 5*time.Second {
		t.Fatalf("makespan %v, want 5s", res.Makespan)
	}
	if res.Efficiency < 0.999 {
		t.Fatalf("uniform round robin must be perfectly efficient, got %v", res.Efficiency)
	}
	if res.TotalWork != 100*time.Second {
		t.Fatalf("total work %v", res.TotalWork)
	}
}

func TestScheduleLPTBeatsRoundRobinOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	times := make([]time.Duration, 200)
	for i := range times {
		times[i] = time.Duration(1+rng.Intn(20)) * time.Second
	}
	// Adversarial order for round robin: big jobs clustered.
	for i := 0; i < 20; i++ {
		times[i*10] = 60 * time.Second
	}
	rr, err := ScheduleImages(times, ClusterConfig{Devices: 10, Schedule: ScheduleRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := ScheduleImages(times, ClusterConfig{Devices: 10, Schedule: ScheduleLPT})
	if err != nil {
		t.Fatal(err)
	}
	if lpt.Makespan > rr.Makespan {
		t.Fatalf("LPT (%v) must not be worse than round robin (%v)", lpt.Makespan, rr.Makespan)
	}
	if lpt.Efficiency < 0.9 {
		t.Fatalf("LPT efficiency %v too low", lpt.Efficiency)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := ScheduleImages(nil, ClusterConfig{Devices: 2}); err == nil {
		t.Fatal("empty image set must fail")
	}
	if _, err := ScheduleImages([]time.Duration{1}, ClusterConfig{Devices: 0}); err == nil {
		t.Fatal("zero devices must fail")
	}
	if _, err := ScheduleImages([]time.Duration{1}, ClusterConfig{Devices: 1, Schedule: SchedulePolicy(7)}); err == nil {
		t.Fatal("unknown policy must fail")
	}
}

func TestAfricaCampaignPaperArithmetic(t *testing.T) {
	// Paper: 38234 images × ~8.5s ≈ 90h for one monitoring period on one
	// GPU; a 20-GPU cluster compresses a multi-period campaign ~20x.
	single, err := AfricaCampaign(38234, 8500*time.Millisecond, 1, ClusterConfig{Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	hours := single.Makespan.Hours()
	if hours < 85 || hours > 95 {
		t.Fatalf("single-GPU period takes %.1f h, paper says ≈90 h", hours)
	}
	// Whole scenario: the paper quotes about four weeks single-GPU, i.e.
	// ~7-8 yearly periods.
	scenario, err := AfricaCampaign(38234, 8500*time.Millisecond, 8, ClusterConfig{Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	weeks := scenario.Makespan.Hours() / (24 * 7)
	if weeks < 3.5 || weeks > 5 {
		t.Fatalf("single-GPU scenario takes %.1f weeks, paper says ≈4", weeks)
	}
	cluster, err := AfricaCampaign(38234, 8500*time.Millisecond, 8, ClusterConfig{Devices: 20})
	if err != nil {
		t.Fatal(err)
	}
	speedup := scenario.Makespan.Seconds() / cluster.Makespan.Seconds()
	if speedup < 19.5 || speedup > 20.5 {
		t.Fatalf("20-GPU speed-up %.1f, want ≈20 (uniform images)", speedup)
	}
}

func TestAfricaCampaignValidation(t *testing.T) {
	if _, err := AfricaCampaign(0, time.Second, 1, ClusterConfig{Devices: 1}); err == nil {
		t.Fatal("zero images must fail")
	}
	if _, err := AfricaCampaign(1, time.Second, 0, ClusterConfig{Devices: 1}); err == nil {
		t.Fatal("zero periods must fail")
	}
}

func TestSchedulePolicyString(t *testing.T) {
	if ScheduleRoundRobin.String() != "round-robin" || ScheduleLPT.String() != "lpt" {
		t.Fatal("SchedulePolicy.String broken")
	}
	if SchedulePolicy(9).String() == "" {
		t.Fatal("unknown policy must render")
	}
}
