package pipeline

import (
	"fmt"
	"sort"
	"time"
)

// ClusterConfig models the §V Africa deployment: a fleet of identical
// GPUs processing a large set of independent images (footnote 14 of the
// paper: "to obtain the results for Africa, a cluster with 20 GPUs was
// used"). Images are independent work items, so scheduling is a classic
// makespan problem; the paper's campaign simply distributes images across
// devices.
type ClusterConfig struct {
	// Devices is the number of GPUs (the paper used 20).
	Devices int
	// Schedule selects the assignment policy.
	Schedule SchedulePolicy
}

// SchedulePolicy selects how images are assigned to devices.
type SchedulePolicy int

const (
	// ScheduleRoundRobin assigns image i to device i mod G — what a
	// simple campaign script does.
	ScheduleRoundRobin SchedulePolicy = iota
	// ScheduleLPT sorts images by decreasing processing time and always
	// assigns to the least-loaded device (longest-processing-time-first,
	// a 4/3-approximation of the optimal makespan).
	ScheduleLPT
)

// String implements fmt.Stringer.
func (p SchedulePolicy) String() string {
	switch p {
	case ScheduleRoundRobin:
		return "round-robin"
	case ScheduleLPT:
		return "lpt"
	default:
		return fmt.Sprintf("SchedulePolicy(%d)", int(p))
	}
}

// ClusterResult summarizes a modeled campaign.
type ClusterResult struct {
	// Makespan is the modeled wall time of the whole campaign.
	Makespan time.Duration
	// TotalWork is the summed per-image time (single-device wall time).
	TotalWork time.Duration
	// PerDevice is each device's total assigned work.
	PerDevice []time.Duration
	// Efficiency is TotalWork / (Devices · Makespan) — 1.0 means no
	// load imbalance.
	Efficiency float64
}

// ScheduleImages models the campaign wall time for a set of per-image
// processing times on the configured cluster.
func ScheduleImages(imageTimes []time.Duration, cfg ClusterConfig) (*ClusterResult, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("pipeline: cluster needs at least one device, got %d", cfg.Devices)
	}
	if len(imageTimes) == 0 {
		return nil, fmt.Errorf("pipeline: no images to schedule")
	}
	res := &ClusterResult{PerDevice: make([]time.Duration, cfg.Devices)}
	switch cfg.Schedule {
	case ScheduleRoundRobin:
		for i, t := range imageTimes {
			res.PerDevice[i%cfg.Devices] += t
		}
	case ScheduleLPT:
		sorted := append([]time.Duration(nil), imageTimes...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
		for _, t := range sorted {
			min := 0
			for d := 1; d < cfg.Devices; d++ {
				if res.PerDevice[d] < res.PerDevice[min] {
					min = d
				}
			}
			res.PerDevice[min] += t
		}
	default:
		return nil, fmt.Errorf("pipeline: unknown schedule policy %d", int(cfg.Schedule))
	}
	for _, t := range imageTimes {
		res.TotalWork += t
	}
	for _, t := range res.PerDevice {
		if t > res.Makespan {
			res.Makespan = t
		}
	}
	if res.Makespan > 0 {
		res.Efficiency = res.TotalWork.Seconds() / (float64(cfg.Devices) * res.Makespan.Seconds())
	}
	return res, nil
}

// AfricaCampaign models the §V-C Africa numbers: images at perImage
// processing time each, one monitoring period. The paper reports ~8.5 s
// per image, ~90 hours for one period on a single GPU (38234 images), and
// the whole scenario (several periods) in about four weeks single-GPU —
// compressed onto the 20-GPU cluster.
func AfricaCampaign(images int, perImage time.Duration, periods int, cfg ClusterConfig) (*ClusterResult, error) {
	if images <= 0 || periods <= 0 {
		return nil, fmt.Errorf("pipeline: campaign needs positive images and periods")
	}
	times := make([]time.Duration, images*periods)
	for i := range times {
		times[i] = perImage
	}
	return ScheduleImages(times, cfg)
}
