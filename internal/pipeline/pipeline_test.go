package pipeline

import (
	"bytes"
	"context"

	"math"
	"path/filepath"
	"strings"
	"testing"

	"bfast/internal/core"
	"bfast/internal/cube"
	"bfast/internal/gpusim"
	"bfast/internal/obs"
	"bfast/internal/workload"
)

func sceneCube(t *testing.T, w, h, n, hist int, nanFrac, breakFrac float64, seed int64) *cube.Cube {
	t.Helper()
	ds, err := workload.Generate(workload.Spec{
		Name: "scene", M: w * h, N: n, History: hist, NaNFrac: nanFrac,
		Mask: workload.MaskClouds, Width: w, BreakFrac: breakFrac, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cube.FromFlat(w, h, n, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunSingleChunk(t *testing.T) {
	c := sceneCube(t, 16, 16, 128, 64, 0.4, 0.3, 61)
	res, err := Run(context.Background(), c, Config{Options: core.DefaultOptions(64)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 1 {
		t.Fatalf("chunks = %d", res.Chunks)
	}
	if res.Phases.Kernel <= 0 || res.Phases.Transfer <= 0 {
		t.Fatalf("modeled phases missing: %+v", res.Phases)
	}
	if res.Map == nil || len(res.Map.Break) != 256 {
		t.Fatal("map not assembled")
	}
	total, neg := res.Map.CountBreaks()
	if total == 0 || neg == 0 {
		t.Fatalf("expected detected breaks, got total=%d neg=%d", total, neg)
	}
	if res.WallInterleaved <= 0 || res.WallInterleaved > res.Phases.Total() {
		t.Fatalf("interleaved wall %v vs total %v", res.WallInterleaved, res.Phases.Total())
	}
}

func TestRunChunkedMatchesUnchunked(t *testing.T) {
	c := sceneCube(t, 20, 10, 96, 48, 0.5, 0.4, 62)
	opt := core.DefaultOptions(48)
	one, err := Run(context.Background(), c, Config{Options: opt, Chunks: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(context.Background(), c, Config{Options: opt, Chunks: 7})
	if err != nil {
		t.Fatal(err)
	}
	if many.Chunks != 7 {
		t.Fatalf("chunks = %d", many.Chunks)
	}
	for i := range one.Map.Break {
		if one.Map.Break[i] != many.Map.Break[i] {
			t.Fatalf("pixel %d: chunked break %d != unchunked %d",
				i, many.Map.Break[i], one.Map.Break[i])
		}
		a, b := one.Map.Magnitude[i], many.Map.Magnitude[i]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("pixel %d: chunked magnitude %v != %v", i, b, a)
		}
	}
}

func TestRunDropEmptySlices(t *testing.T) {
	// Build a cube with explicit empty slices interleaved. The inner
	// scene uses the iid mask: with 64 pixels at 30% NaN the chance of an
	// accidentally-empty slice is negligible (0.3^64), so exactly the
	// padding slices are dropped.
	ds, err := workload.Generate(workload.Spec{
		Name: "inner", M: 64, N: 64, History: 32, NaNFrac: 0.3,
		Width: 8, BreakFrac: 0.2, Seed: 63,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := cube.FromFlat(8, 8, 64, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	padded, _ := cube.New(8, 8, 128)
	for i := 0; i < 64; i++ {
		src := inner.Series(i)
		dst := padded.Series(i)
		for t0 := 0; t0 < 64; t0++ {
			dst[2*t0] = src[t0] // odd slices stay all-NaN
		}
	}
	opt := core.DefaultOptions(32) // history on the compacted axis
	res, err := Run(context.Background(), padded, Config{Options: opt, DropEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KeptDates) != 64 {
		t.Fatalf("kept %d dates, want 64", len(res.KeptDates))
	}
	for i, k := range res.KeptDates {
		if k != 2*i {
			t.Fatalf("kept date %d = %d, want %d", i, k, 2*i)
		}
	}
	// Result must match running on the unpadded cube directly.
	direct, err := Run(context.Background(), inner, Config{Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Map.Break {
		if direct.Map.Break[i] != res.Map.Break[i] {
			t.Fatalf("pixel %d: padded %d != direct %d", i, res.Map.Break[i], direct.Map.Break[i])
		}
	}
}

func TestRunSampledSkipsMap(t *testing.T) {
	c := sceneCube(t, 16, 16, 96, 48, 0.4, 0.3, 64)
	res, err := Run(context.Background(), c, Config{Options: core.DefaultOptions(48), SampleM: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Sampled runs leave the map unpopulated (all NaN magnitudes).
	if frac := MergeMagnitudeNaN(res.Map); frac != 1 {
		t.Fatalf("sampled run should leave map empty, NaN frac = %v", frac)
	}
	if res.Phases.Kernel <= 0 {
		t.Fatal("kernel time still expected from sampled run")
	}
}

func TestRunInvalidOptions(t *testing.T) {
	c := sceneCube(t, 4, 4, 32, 16, 0.2, 0, 65)
	if _, err := Run(context.Background(), c, Config{Options: core.DefaultOptions(32)}); err == nil {
		t.Fatal("expected validation error (history = N)")
	}
}

func TestRunAllEmptyCubeWithDrop(t *testing.T) {
	c, _ := cube.New(4, 4, 16)
	if _, err := Run(context.Background(), c, Config{Options: core.DefaultOptions(8), DropEmpty: true}); err == nil {
		t.Fatal("expected error for all-empty cube")
	}
}

func TestRunTitanZSlowerThan2080Ti(t *testing.T) {
	c := sceneCube(t, 16, 16, 96, 48, 0.4, 0.2, 66)
	opt := core.DefaultOptions(48)
	fast, err := Run(context.Background(), c, Config{Options: opt, Profile: gpusim.RTX2080Ti()})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(context.Background(), c, Config{Options: opt, Profile: gpusim.TitanZ()})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Phases.Kernel <= fast.Phases.Kernel {
		t.Fatalf("TITAN Z (%v) should be slower than 2080 Ti (%v)",
			slow.Phases.Kernel, fast.Phases.Kernel)
	}
}

func TestInterleavedWallBounds(t *testing.T) {
	c := sceneCube(t, 24, 24, 128, 64, 0.5, 0.2, 67)
	res, err := Run(context.Background(), c, Config{Options: core.DefaultOptions(64), Chunks: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved wall must be at least the kernel total plus startup and
	// at most the plain sum of phases.
	if res.WallInterleaved < res.Phases.Kernel {
		t.Fatalf("wall %v below kernel total %v", res.WallInterleaved, res.Phases.Kernel)
	}
	if res.WallInterleaved > res.Phases.Total() {
		t.Fatalf("wall %v above phase sum %v", res.WallInterleaved, res.Phases.Total())
	}
}

func TestRunFileMatchesInMemory(t *testing.T) {
	c := sceneCube(t, 12, 10, 96, 48, 0.4, 0.3, 68)
	dir := t.TempDir()
	path := dir + "/scene.bfc"
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(48)
	mem, err := Run(context.Background(), c, Config{Options: opt, Chunks: 5})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunFile(context.Background(), path, Config{Options: opt, Chunks: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mem.Map.Break {
		if mem.Map.Break[i] != streamed.Map.Break[i] {
			t.Fatalf("pixel %d: streamed break %d != in-memory %d",
				i, streamed.Map.Break[i], mem.Map.Break[i])
		}
		a, b := mem.Map.Magnitude[i], streamed.Map.Magnitude[i]
		// The file stores float32, so magnitudes agree to f32 precision.
		if math.Abs(a-b) > 2e-3 && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("pixel %d: magnitude %v vs %v", i, b, a)
		}
	}
	if streamed.Phases.Kernel <= 0 {
		t.Fatal("streamed run has no kernel time")
	}
}

func TestRunFileErrors(t *testing.T) {
	if _, err := RunFile(context.Background(), "/nonexistent.bfc", Config{Options: core.DefaultOptions(8)}); err == nil {
		t.Fatal("missing file must fail")
	}
	c := sceneCube(t, 4, 4, 32, 16, 0.2, 0, 69)
	path := t.TempDir() + "/c.bfc"
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFile(context.Background(), path, Config{Options: core.DefaultOptions(16), DropEmpty: true}); err == nil {
		t.Fatal("DropEmpty in streaming mode must fail")
	}
	if _, err := RunFile(context.Background(), path, Config{Options: core.DefaultOptions(32)}); err == nil {
		t.Fatal("invalid options must fail")
	}
}

func TestSwathSceneDropsEmptySlices(t *testing.T) {
	// The Africa regime: swath padding blanks whole acquisitions, which
	// the §III-D preprocessing removes before the kernels run.
	ds, err := workload.Generate(workload.Spec{
		Name: "africa-like", M: 32 * 32, N: 160, History: 80,
		NaNFrac: 0.9, Mask: workload.MaskSwath, Width: 32, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cube.FromFlat(32, 32, 160, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	compact, kept, err := c.DropEmptySlices()
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) >= 160 {
		t.Fatal("swath scene should contain empty slices to drop")
	}
	// History must be re-expressed on the compacted axis, like the Africa
	// preset does (the paper: 6873 nominal dates -> ~350 with data).
	newHist := 0
	for _, k := range kept {
		if k < 80 {
			newHist++
		}
	}
	if newHist < 8 || newHist >= len(kept) {
		t.Skipf("compacted history too degenerate on this seed: %d", newHist)
	}
	opt := core.DefaultOptions(newHist)
	res, err := Run(context.Background(), compact, Config{Options: opt, Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.Kernel <= 0 {
		t.Fatal("no kernel work on compacted scene")
	}
	t.Logf("swath scene: %d of 160 slices kept, history %d -> %d", len(kept), 80, newHist)
}

// TestRunObservability: under a root span, Run must emit the
// pipeline.run tree (preprocess, chunking, one pipeline.chunk per
// chunk with phase-ns attrs), and a configured logger must receive one
// debug line per chunk carrying the chunk index.
func TestRunObservability(t *testing.T) {
	c := sceneCube(t, 12, 12, 96, 48, 0.4, 0.3, 63)
	var logBuf bytes.Buffer
	lg, err := obs.NewLogger(&logBuf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	root := obs.NewSpan("request")
	ctx := obs.ContextWithSpan(context.Background(), root)
	if _, err := Run(ctx, c, Config{Options: core.DefaultOptions(48), Chunks: 3, Logger: lg}); err != nil {
		t.Fatal(err)
	}
	root.End()

	n := root.Node()
	run := n.Find("pipeline.run")
	if run == nil {
		t.Fatal("no pipeline.run span")
	}
	if run.Find("pipeline.preprocess") == nil || run.Find("pipeline.chunking") == nil {
		t.Fatalf("missing host-phase spans: %+v", run)
	}
	chunks := 0
	for _, ch := range run.Children {
		if ch.Name != "pipeline.chunk" {
			continue
		}
		chunks++
		for _, attr := range []string{"idx", "pixels", "stage_ns", "transfer_ns", "kernel_ns"} {
			if _, ok := ch.Attrs[attr]; !ok {
				t.Fatalf("pipeline.chunk missing attr %q: %v", attr, ch.Attrs)
			}
		}
	}
	if chunks != 3 {
		t.Fatalf("chunk spans = %d, want 3", chunks)
	}
	if got := strings.Count(logBuf.String(), `"msg":"pipeline chunk done"`); got != 3 {
		t.Fatalf("chunk debug lines = %d, want 3: %s", got, logBuf.String())
	}
}

// TestRunFileObservability: the streaming driver must emit the same
// per-chunk spans (kernel_ns attached at retire time) and staged/retired
// log pairs.
func TestRunFileObservability(t *testing.T) {
	c := sceneCube(t, 10, 10, 96, 48, 0.4, 0.3, 64)
	path := filepath.Join(t.TempDir(), "scene.bfc")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	lg, err := obs.NewLogger(&logBuf, "debug", "text")
	if err != nil {
		t.Fatal(err)
	}
	root := obs.NewSpan("request")
	ctx := obs.ContextWithSpan(context.Background(), root)
	if _, err := RunFile(ctx, path, Config{Options: core.DefaultOptions(48), Chunks: 2, Logger: lg}); err != nil {
		t.Fatal(err)
	}
	root.End()

	node := root.Node()
	run := node.Find("pipeline.run_file")
	if run == nil {
		t.Fatal("no pipeline.run_file span")
	}
	chunks := 0
	for _, ch := range run.Children {
		if ch.Name != "pipeline.chunk" {
			continue
		}
		chunks++
		if _, ok := ch.Attrs["kernel_ns"]; !ok {
			t.Fatalf("streamed chunk span missing kernel_ns: %v", ch.Attrs)
		}
	}
	if chunks != 2 {
		t.Fatalf("chunk spans = %d, want 2", chunks)
	}
	if strings.Count(logBuf.String(), "pipeline chunk staged") != 2 ||
		strings.Count(logBuf.String(), "pipeline chunk retired") != 2 {
		t.Fatalf("staged/retired log pairs missing: %s", logBuf.String())
	}
}
