// Package pipeline implements the end-to-end application of §III-D /
// Fig. 10: a scene (data cube) too large for device memory is split into
// chunks on the host; for each chunk the data are preprocessed, copied to
// the (simulated) device, run through the kernels, and the results copied
// back and merged into a break map. The per-phase times — preprocessing,
// chunking, transfer, kernel — are reported separately exactly as Fig. 10
// does, together with the modeled wall time with and without interleaving
// host and device phases.
//
// Host phases (chunk splitting, NaN-slice removal, float32 staging) are
// measured for real; transfer and kernel times come from the gpusim cost
// model, since the point of Fig. 10 is the *relative* weight of the
// phases on the paper's device.
//
// Host and device phases are also genuinely overlapped on the shared
// work-stealing scheduler: Run stages chunk c+1 while chunk c's kernels
// simulate, and RunFile simulates chunk c's kernels while the stream
// reads and stages chunk c+1. Phase sums and the assembled break map are
// identical to the sequential execution — only wall time changes.
package pipeline

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"time"

	"bfast/internal/core"
	"bfast/internal/cube"
	"bfast/internal/gpusim"
	"bfast/internal/kernels"
	"bfast/internal/obs"
	"bfast/internal/sched"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Profile is the simulated device (default RTX2080Ti).
	Profile gpusim.Profile
	// Options are the BFAST-Monitor parameters (History refers to the
	// date axis *after* empty-slice removal when DropEmpty is set).
	Options core.Options
	// Strategy selects the kernel organization (default StrategyOurs).
	Strategy core.Strategy
	// Chunks is the number of host-side chunks (§V-B uses 50 for the
	// scenes that exceed device memory; default 1).
	Chunks int
	// PCIeGBs is the host-device transfer bandwidth in GB/s (default 12,
	// PCIe 3.0 x16 sustained).
	PCIeGBs float64
	// DropEmpty removes all-NaN date slices before processing (the
	// preprocessing step the paper applies to the Africa stacks).
	DropEmpty bool
	// SampleM, when positive, samples each chunk's kernel simulation to
	// ≈SampleM pixels. The returned break map then only covers sampled
	// pixels; leave 0 for full maps.
	SampleM int
	// Logger receives per-chunk debug logging. nil disables logging —
	// the pipeline never logs through a global logger.
	Logger *slog.Logger
}

func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return obs.NopLogger()
}

func (c Config) withDefaults() Config {
	if c.Profile.Name == "" {
		c.Profile = gpusim.RTX2080Ti()
	}
	if c.Chunks <= 0 {
		c.Chunks = 1
	}
	if c.PCIeGBs <= 0 {
		c.PCIeGBs = 12
	}
	return c
}

// Phases is the Fig. 10 decomposition.
type Phases struct {
	// Preprocess is the measured host time for data-dependent setup
	// (empty-slice removal, parameter initialization).
	Preprocess time.Duration
	// Chunking is the measured host time for splitting and staging chunks
	// (including the float32 conversion of the upload buffers).
	Chunking time.Duration
	// Transfer is the modeled host↔device copy time.
	Transfer time.Duration
	// Kernel is the modeled device execution time.
	Kernel time.Duration
}

// Total sums all phases (the non-interleaved wall time).
func (p Phases) Total() time.Duration {
	return p.Preprocess + p.Chunking + p.Transfer + p.Kernel
}

// Result is the output of a pipeline run.
type Result struct {
	// Phases is the per-phase time decomposition summed over chunks.
	Phases Phases
	// WallInterleaved is the modeled wall time when host phases of chunk
	// i+1 overlap the device phases of chunk i (the interleaving §V-B
	// argues makes kernel time dominate).
	WallInterleaved time.Duration
	// Map is the assembled break map (monitoring-period offsets).
	Map *cube.BreakMap
	// KeptDates lists the original date indices kept by empty-slice
	// removal (nil when DropEmpty is off).
	KeptDates []int
	// Chunks is the number of chunks processed.
	Chunks int
	// Runs are all modeled kernel executions across chunks.
	Runs []gpusim.KernelRun
}

// Run executes the pipeline over the cube. Cancellation is checked at
// chunk granularity: when ctx is cancelled the current chunk's in-flight
// staging and simulation finish but no further chunk starts, and Run
// returns ctx.Err().
func Run(ctx context.Context, c *cube.Cube, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Chunks: cfg.Chunks}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, spRun := obs.StartSpan(ctx, "pipeline.run")
	spRun.SetAttr("chunks", cfg.Chunks)
	spRun.SetAttr("strategy", cfg.Strategy.String())
	defer spRun.End()
	lg := cfg.logger()

	// Phase: preprocessing (host, measured).
	work := c
	_, spPre := obs.StartSpan(ctx, "pipeline.preprocess")
	start := time.Now()
	if cfg.DropEmpty {
		compact, kept, err := c.DropEmptySlices()
		if err != nil {
			spPre.End()
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		work = compact
		res.KeptDates = kept
	}
	res.Phases.Preprocess = time.Since(start)
	spPre.End()

	if err := cfg.Options.Validate(work.Dates); err != nil {
		return nil, err
	}
	monLen := work.Dates - cfg.Options.History
	res.Map = cube.NewBreakMap(c.Width, c.Height, monLen)

	// Phase: chunk split (host, measured).
	_, spSplit := obs.StartSpan(ctx, "pipeline.chunking")
	start = time.Now()
	chunks := work.Chunks(cfg.Chunks)
	res.Phases.Chunking = time.Since(start)
	spSplit.End()

	// Chunk staging (float32 upload buffers, host, measured; charged to
	// the chunking phase like the paper's host-side chunk prep) is
	// *actually* overlapped with the kernel simulation: while chunk c runs
	// through the kernels, chunk c+1 is staged on the shared scheduler —
	// the §V-B interleaving the wall model below describes. Per-phase sums
	// are unchanged: each stage is still individually timed.
	stageChunk := func(ch cube.Chunk) (*kernels.Batch32, time.Duration, error) {
		t0 := time.Now()
		b32, err := kernels.FromFloat64(ch.Pixels, ch.Dates, ch.Values)
		if err != nil {
			return nil, 0, err
		}
		return b32, time.Since(t0), nil
	}
	pool := sched.Shared()
	cur, curStage, err := stageChunk(chunks[0])
	if err != nil {
		return nil, err
	}

	var hostPerChunk, devPerChunk []time.Duration
	for idx, ch := range chunks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, spCh := obs.StartSpan(ctx, "pipeline.chunk")
		spCh.SetAttr("idx", idx)
		spCh.SetAttr("pixels", ch.Pixels)
		// Kick off staging of the next chunk before simulating this one.
		var (
			next      *kernels.Batch32
			nextStage time.Duration
			nextTask  *sched.Task
		)
		if idx+1 < len(chunks) {
			nc := chunks[idx+1]
			nextTask = pool.Go(func() error {
				var e error
				next, nextStage, e = stageChunk(nc)
				return e
			})
		}

		res.Phases.Chunking += curStage

		// Transfer (modeled): pixels up, break+magnitude down.
		up := float64(4 * ch.Pixels * ch.Dates)
		down := float64(8 * ch.Pixels)
		transfer := time.Duration((up + down) / (cfg.PCIeGBs * 1e9) * 1e9)
		res.Phases.Transfer += transfer

		// Kernels (modeled).
		dev := gpusim.NewDevice(cfg.Profile)
		app, err := kernels.SimulateApp(dev, cur, cfg.Options, cfg.Strategy, cfg.SampleM)
		if err != nil {
			if nextTask != nil {
				_ = nextTask.Wait()
			}
			spCh.End()
			return nil, err
		}
		res.Phases.Kernel += app.KernelTime
		res.Runs = append(res.Runs, app.Runs...)

		hostPerChunk = append(hostPerChunk, curStage+transfer)
		devPerChunk = append(devPerChunk, app.KernelTime)

		// Merge results (only full-coverage runs fill the map).
		if cfg.SampleM <= 0 || cfg.SampleM >= ch.Pixels {
			for p := 0; p < ch.Pixels; p++ {
				res.Map.Break[ch.Start+p] = app.Breaks[p]
				res.Map.Magnitude[ch.Start+p] = float64(app.Means[p])
			}
		}

		spCh.SetAttr("stage_ns", int64(curStage))
		spCh.SetAttr("transfer_ns", int64(transfer))
		spCh.SetAttr("kernel_ns", int64(app.KernelTime))
		spCh.End()
		lg.Debug("pipeline chunk done",
			"idx", idx, "pixels", ch.Pixels,
			"stage", curStage, "transfer", transfer, "kernel", app.KernelTime)

		if nextTask != nil {
			if err := nextTask.Wait(); err != nil {
				return nil, err
			}
			cur, curStage = next, nextStage
		}
	}

	// Interleaved wall model: chunk i's host work overlaps chunk i-1's
	// device work; preprocessing happens once up front.
	wall := res.Phases.Preprocess + hostPerChunk[0]
	for i := range devPerChunk {
		step := devPerChunk[i]
		if i+1 < len(hostPerChunk) && hostPerChunk[i+1] > step {
			step = hostPerChunk[i+1]
		}
		wall += step
	}
	res.WallInterleaved = wall
	return res, nil
}

// MergeMagnitudeNaN returns the fraction of map pixels that could not be
// processed (NaN magnitude) — a sanity metric for high-NaN scenes.
func MergeMagnitudeNaN(m *cube.BreakMap) float64 {
	if len(m.Magnitude) == 0 {
		return 0
	}
	bad := 0
	for _, v := range m.Magnitude {
		if math.IsNaN(v) {
			bad++
		}
	}
	return float64(bad) / float64(len(m.Magnitude))
}

// RunFile executes the pipeline directly from a cube file, streaming one
// chunk at a time through cube.StreamChunks so the whole scene is never
// resident in host memory — the §V-B regime where "loading the images from
// disk to host ... has become the new bottleneck". DropEmpty is not
// supported in streaming mode (empty-slice analysis needs a full pass);
// run bfast-stack -drop-empty when building the file instead.
//
// Cancellation mirrors Run: checked before each streamed chunk is
// staged; the in-flight chunk's simulation is retired before returning
// ctx.Err().
func RunFile(ctx context.Context, path string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.DropEmpty {
		return nil, fmt.Errorf("pipeline: DropEmpty is not supported in streaming mode")
	}
	ctx, spRun := obs.StartSpan(ctx, "pipeline.run_file")
	spRun.SetAttr("chunks", cfg.Chunks)
	spRun.SetAttr("strategy", cfg.Strategy.String())
	defer spRun.End()
	lg := cfg.logger()
	res := &Result{Chunks: cfg.Chunks}
	var hostPerChunk, devPerChunk []time.Duration

	// The kernel simulation of chunk c runs as a pending task on the
	// shared scheduler while StreamChunks reads and stages chunk c+1 —
	// the disk-read overlap §V-B calls out once loading becomes the
	// bottleneck. Results are merged only after Wait, on the caller
	// goroutine, so the break map and phase sums stay deterministic.
	pool := sched.Shared()
	var (
		pending     *sched.Task
		pendingCh   cube.Chunk
		pendingApp  *kernels.AppResult
		pendingSpan *obs.Span
		pendingIdx  int
	)
	flush := func() error {
		if pending == nil {
			return nil
		}
		err := pending.Wait()
		pending = nil
		defer pendingSpan.End()
		if err != nil {
			return err
		}
		res.Phases.Kernel += pendingApp.KernelTime
		res.Runs = append(res.Runs, pendingApp.Runs...)
		devPerChunk = append(devPerChunk, pendingApp.KernelTime)
		if cfg.SampleM <= 0 || cfg.SampleM >= pendingCh.Pixels {
			for p := 0; p < pendingCh.Pixels; p++ {
				res.Map.Break[pendingCh.Start+p] = pendingApp.Breaks[p]
				res.Map.Magnitude[pendingCh.Start+p] = float64(pendingApp.Means[p])
			}
		}
		pendingSpan.SetAttr("kernel_ns", int64(pendingApp.KernelTime))
		lg.Debug("pipeline chunk retired",
			"idx", pendingIdx, "pixels", pendingCh.Pixels, "kernel", pendingApp.KernelTime)
		return nil
	}
	err := cube.StreamChunks(path, cfg.Chunks, func(h cube.Header, ch cube.Chunk) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if res.Map == nil {
			if err := cfg.Options.Validate(h.Dates); err != nil {
				return err
			}
			res.Map = cube.NewBreakMap(h.Width, h.Height, h.Dates-cfg.Options.History)
		}
		// Stage this chunk (b32 is a fresh copy, so the previous chunk's
		// in-flight kernel task never touches the stream's read buffer).
		start := time.Now()
		b32, err := kernels.FromFloat64(ch.Pixels, ch.Dates, ch.Values)
		if err != nil {
			return err
		}
		stage := time.Since(start)
		res.Phases.Chunking += stage

		up := float64(4 * ch.Pixels * ch.Dates)
		down := float64(8 * ch.Pixels)
		transfer := time.Duration((up + down) / (cfg.PCIeGBs * 1e9) * 1e9)
		res.Phases.Transfer += transfer
		hostPerChunk = append(hostPerChunk, stage+transfer)

		// Retire the previous chunk's kernels, then launch this chunk's.
		if err := flush(); err != nil {
			return err
		}
		pendingIdx = len(hostPerChunk) - 1
		// The chunk span deliberately outlives this callback: it stays
		// open while the kernel task runs and is Ended by flush() (or
		// by the error path below) when the chunk retires.
		//lint:allow spanpair -- cross-iteration span; flush() and the StreamChunks error path End it
		_, pendingSpan = obs.StartSpan(ctx, "pipeline.chunk")
		pendingSpan.SetAttr("idx", pendingIdx)
		pendingSpan.SetAttr("pixels", ch.Pixels)
		pendingSpan.SetAttr("stage_ns", int64(stage))
		pendingSpan.SetAttr("transfer_ns", int64(transfer))
		lg.Debug("pipeline chunk staged",
			"idx", pendingIdx, "pixels", ch.Pixels, "stage", stage, "transfer", transfer)
		pendingCh = ch
		pending = pool.Go(func() error {
			dev := gpusim.NewDevice(cfg.Profile)
			app, err := kernels.SimulateApp(dev, b32, cfg.Options, cfg.Strategy, cfg.SampleM)
			if err != nil {
				return err
			}
			pendingApp = app
			return nil
		})
		return nil
	})
	if err != nil {
		if pending != nil {
			_ = pending.Wait()
		}
		// The in-flight chunk span would otherwise stay open in the
		// trace tree (spanpair); End is nil-safe when nothing is pending.
		pendingSpan.End()
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(devPerChunk) == 0 {
		return nil, fmt.Errorf("pipeline: no chunks processed")
	}
	wall := res.Phases.Preprocess + hostPerChunk[0]
	for i := range devPerChunk {
		step := devPerChunk[i]
		if i+1 < len(hostPerChunk) && hostPerChunk[i+1] > step {
			step = hostPerChunk[i+1]
		}
		wall += step
	}
	res.WallInterleaved = wall
	return res, nil
}
