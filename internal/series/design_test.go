package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeDesignShape(t *testing.T) {
	d, err := MakeDesign(100, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	if d.K != 8 || d.N != 100 {
		t.Fatalf("shape %dx%d, want 8x100", d.K, d.N)
	}
}

func TestMakeDesignInterceptAndTrend(t *testing.T) {
	d, _ := MakeDesign(10, 2, 23)
	for tt := 0; tt < 10; tt++ {
		if d.At(0, tt) != 1 {
			t.Fatalf("intercept row must be 1, got %v", d.At(0, tt))
		}
		if d.At(1, tt) != float64(tt+1) {
			t.Fatalf("trend row must be t+1, got %v at %d", d.At(1, tt), tt)
		}
	}
}

func TestMakeDesignHarmonics(t *testing.T) {
	f := 23.0
	d, _ := MakeDesign(46, 3, f)
	for tt := 0; tt < 46; tt++ {
		for j := 1; j <= 3; j++ {
			ang := 2 * math.Pi * float64(j) * float64(tt+1) / f
			if math.Abs(d.At(2*j, tt)-math.Sin(ang)) > 1e-12 {
				t.Fatalf("sin harmonic j=%d t=%d wrong", j, tt)
			}
			if math.Abs(d.At(2*j+1, tt)-math.Cos(ang)) > 1e-12 {
				t.Fatalf("cos harmonic j=%d t=%d wrong", j, tt)
			}
		}
	}
}

func TestMakeDesignPeriodicity(t *testing.T) {
	// Harmonic rows must repeat with period f when f divides the range.
	f := 23.0
	d, _ := MakeDesign(92, 2, f)
	for tt := 0; tt < 92-23; tt++ {
		for j := 2; j < d.K; j++ {
			if math.Abs(d.At(j, tt)-d.At(j, tt+23)) > 1e-9 {
				t.Fatalf("row %d not periodic at t=%d", j, tt)
			}
		}
	}
}

func TestMakeDesignSinCosIdentity(t *testing.T) {
	// sin² + cos² == 1 for each harmonic pair.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := rng.Intn(5)
		freq := 1 + rng.Float64()*400
		d, err := MakeDesign(n, k, freq)
		if err != nil {
			return false
		}
		for tt := 0; tt < n; tt++ {
			for j := 1; j <= k; j++ {
				s, c := d.At(2*j, tt), d.At(2*j+1, tt)
				if math.Abs(s*s+c*c-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeDesignErrors(t *testing.T) {
	if _, err := MakeDesign(0, 3, 23); err == nil {
		t.Fatal("expected error for N=0")
	}
	if _, err := MakeDesign(10, -1, 23); err == nil {
		t.Fatal("expected error for k<0")
	}
	if _, err := MakeDesign(10, 3, 0); err == nil {
		t.Fatal("expected error for f=0")
	}
}

func TestColumn(t *testing.T) {
	d, _ := MakeDesign(5, 1, 23)
	col := make([]float64, d.K)
	d.Column(2, col)
	for j := 0; j < d.K; j++ {
		if col[j] != d.At(j, 2) {
			t.Fatalf("Column mismatch at j=%d", j)
		}
	}
}

func TestFilterMissingBasic(t *testing.T) {
	y := []float64{1, NaN, 3, NaN, 5, 6}
	f := FilterMissing(y, 4)
	if f.NValid != 4 {
		t.Fatalf("NValid = %d, want 4", f.NValid)
	}
	if f.NValidHist != 2 {
		t.Fatalf("NValidHist = %d, want 2", f.NValidHist)
	}
	wantV := []float64{1, 3, 5, 6}
	wantI := []int{0, 2, 4, 5}
	for i := 0; i < 4; i++ {
		if f.Values[i] != wantV[i] || f.Index[i] != wantI[i] {
			t.Fatalf("filtered[%d] = (%v,%d), want (%v,%d)",
				i, f.Values[i], f.Index[i], wantV[i], wantI[i])
		}
	}
	for i := 4; i < 6; i++ {
		if !math.IsNaN(f.Values[i]) || f.Index[i] != -1 {
			t.Fatalf("padding[%d] = (%v,%d), want (NaN,-1)", i, f.Values[i], f.Index[i])
		}
	}
}

func TestFilterMissingAllValid(t *testing.T) {
	y := []float64{1, 2, 3}
	f := FilterMissing(y, 2)
	if f.NValid != 3 || f.NValidHist != 2 {
		t.Fatalf("got NValid=%d NValidHist=%d", f.NValid, f.NValidHist)
	}
}

func TestFilterMissingAllMissing(t *testing.T) {
	y := []float64{NaN, NaN}
	f := FilterMissing(y, 1)
	if f.NValid != 0 || f.NValidHist != 0 {
		t.Fatalf("got NValid=%d NValidHist=%d", f.NValid, f.NValidHist)
	}
}

func TestFilterMissingEmpty(t *testing.T) {
	f := FilterMissing(nil, 0)
	if f.NValid != 0 || f.NValidHist != 0 || len(f.Values) != 0 {
		t.Fatal("empty input must give empty output")
	}
}

func TestFilterMissingPanicsOnBadHistory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n out of range")
		}
	}()
	FilterMissing([]float64{1}, 2)
}

func TestFilterMissingProperties(t *testing.T) {
	// Properties: valid values preserved in order; indices strictly
	// increasing; NValidHist consistent with the history prefix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := rng.Intn(300)
		n := 0
		if N > 0 {
			n = rng.Intn(N + 1)
		}
		y := make([]float64, N)
		for i := range y {
			if rng.Float64() < 0.6 {
				y[i] = NaN
			} else {
				y[i] = rng.NormFloat64()
			}
		}
		fl := FilterMissing(y, n)
		// Order and value preservation.
		j := 0
		histCount := 0
		for i, v := range y {
			if IsMissing(v) {
				continue
			}
			if fl.Values[j] != v || fl.Index[j] != i {
				return false
			}
			if i < n {
				histCount++
			}
			j++
		}
		if j != fl.NValid || histCount != fl.NValidHist {
			return false
		}
		// Indices strictly increasing.
		for i := 1; i < fl.NValid; i++ {
			if fl.Index[i] <= fl.Index[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRemapIndex(t *testing.T) {
	y := []float64{1, NaN, 3, NaN, 5, NaN, 7}
	n := 4 // history [0,4): valid at 0,2 -> n̄=2; monitoring valid at 4,6
	f := FilterMissing(y, n)
	if got := RemapIndex(f, 0, n); got != 0 { // filtered pos 2 -> orig 4 -> offset 0
		t.Fatalf("RemapIndex(0) = %d, want 0", got)
	}
	if got := RemapIndex(f, 1, n); got != 2 { // orig 6 -> offset 2
		t.Fatalf("RemapIndex(1) = %d, want 2", got)
	}
	if got := RemapIndex(f, 2, n); got != -1 {
		t.Fatalf("RemapIndex out of range = %d, want -1", got)
	}
	if got := RemapIndex(f, -1, n); got != -1 {
		t.Fatalf("RemapIndex(-1) = %d, want -1", got)
	}
}

func TestCountValidAndNaNFraction(t *testing.T) {
	y := []float64{1, NaN, 2, NaN}
	if CountValid(y) != 2 {
		t.Fatal("CountValid wrong")
	}
	if NaNFraction(y) != 0.5 {
		t.Fatal("NaNFraction wrong")
	}
	if NaNFraction(nil) != 0 {
		t.Fatal("NaNFraction(nil) should be 0")
	}
}

func TestMakeDesignTrendless(t *testing.T) {
	d, err := MakeDesignTrendless(50, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	if d.K != 5 {
		t.Fatalf("trend-less K = %d, want 5", d.K)
	}
	// Row 0 intercept, row 1 first sin harmonic (no trend row).
	for tt := 0; tt < 50; tt++ {
		if d.At(0, tt) != 1 {
			t.Fatal("intercept missing")
		}
		want := math.Sin(2 * math.Pi * float64(tt+1) / 23)
		if math.Abs(d.At(1, tt)-want) > 1e-12 {
			t.Fatalf("row 1 should be the first harmonic, got %v want %v", d.At(1, tt), want)
		}
	}
}
