package series

import (
	"math"
	"math/rand"
	"testing"
)

func randSeries(rng *rand.Rand, n int, nanFrac float64) []float64 {
	y := make([]float64, n)
	for i := range y {
		if rng.Float64() < nanFrac {
			y[i] = math.NaN()
		} else {
			y[i] = rng.NormFloat64()
		}
	}
	return y
}

func TestMaskAllNaNPixel(t *testing.T) {
	y := make([]float64, 100)
	for i := range y {
		y[i] = math.NaN()
	}
	m := MaskOf(y)
	if m.CountValid() != 0 || m.CountValidPrefix(50) != 0 {
		t.Fatal("all-NaN pixel must count zero valid")
	}
	if m.AllValid(1) || m.AllValid(100) {
		t.Fatal("all-NaN pixel cannot be all-valid")
	}
	if NthValid(m.Words, 100, 0) != -1 {
		t.Fatal("NthValid on empty mask must be -1")
	}
	for _, w := range m.Words {
		if w != 0 {
			t.Fatal("all-NaN pixel must have zero words")
		}
	}
}

func TestMaskAllValidFastPathWord(t *testing.T) {
	// 128 valid observations: both words must be the fast-path value.
	y := make([]float64, 128)
	for i := range y {
		y[i] = float64(i)
	}
	m := MaskOf(y)
	for wi, w := range m.Words {
		if w != AllValidWord {
			t.Fatalf("word %d = %#x, want all-ones fast-path word", wi, w)
		}
	}
	if !m.AllValid(128) || !m.AllValid(64) || !m.AllValid(1) {
		t.Fatal("AllValid must hold on an all-valid pixel")
	}
	if m.CountValid() != 128 || m.CountValidPrefix(70) != 70 {
		t.Fatal("popcount counts wrong on all-valid pixel")
	}
	for k := 0; k < 128; k++ {
		if NthValid(m.Words, 128, k) != k {
			t.Fatalf("NthValid(%d) wrong on all-valid pixel", k)
		}
	}
}

func TestMaskTailWordNotMultipleOf64(t *testing.T) {
	// N = 70: the second word covers only 6 bits; bits beyond N must be
	// zero and never counted.
	y := make([]float64, 70)
	for i := range y {
		y[i] = 1
	}
	y[69] = math.NaN()
	m := MaskOf(y)
	if len(m.Words) != 2 {
		t.Fatalf("expected 2 words for N=70, got %d", len(m.Words))
	}
	if m.Words[1]>>6 != 0 {
		t.Fatal("bits beyond N must be zero")
	}
	if m.CountValid() != 69 {
		t.Fatalf("CountValid = %d, want 69", m.CountValid())
	}
	if m.AllValid(70) {
		t.Fatal("AllValid(70) must be false with a NaN at 69")
	}
	if !m.AllValid(69) {
		t.Fatal("AllValid(69) must be true")
	}
	if NthValid(m.Words, 70, 68) != 68 || NthValid(m.Words, 70, 69) != -1 {
		t.Fatal("NthValid tail handling wrong")
	}
	// CountBits with n inside the tail word.
	if CountBits(m.Words, 66) != 66 {
		t.Fatalf("CountBits(66) = %d, want 66", CountBits(m.Words, 66))
	}
}

func TestMaskMatchesFilterMissingRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 64, 65, 127, 128, 200, 321} {
		for _, frac := range []float64{0, 0.2, 0.5, 0.9, 1} {
			y := randSeries(rng, n, frac)
			hist := n / 2
			if hist == 0 {
				hist = n
			}
			f := FilterMissing(y, hist)
			m := MaskOf(y)
			if m.CountValid() != f.NValid {
				t.Fatalf("n=%d frac=%g: CountValid %d != %d", n, frac, m.CountValid(), f.NValid)
			}
			if m.CountValidPrefix(hist) != f.NValidHist {
				t.Fatalf("n=%d frac=%g: prefix count %d != %d", n, frac, m.CountValidPrefix(hist), f.NValidHist)
			}
			if m.CountValid() != CountValid(y) {
				t.Fatal("mask count disagrees with CountValid")
			}
			for t2 := 0; t2 < n; t2++ {
				if m.Valid(t2) == math.IsNaN(y[t2]) {
					t.Fatalf("Valid(%d) wrong", t2)
				}
			}
			// NthValid and AppendValidIndices must reproduce Filtered.Index.
			idx := AppendValidIndices(nil, m.Words, n)
			if len(idx) != f.NValid {
				t.Fatalf("AppendValidIndices length %d != %d", len(idx), f.NValid)
			}
			for k := 0; k < f.NValid; k++ {
				if idx[k] != f.Index[k] {
					t.Fatalf("index %d: %d != %d", k, idx[k], f.Index[k])
				}
				if NthValid(m.Words, n, k) != f.Index[k] {
					t.Fatalf("NthValid(%d) != Filtered.Index", k)
				}
			}
			if NthValid(m.Words, n, f.NValid) != -1 {
				t.Fatal("NthValid past the last valid must be -1")
			}
		}
	}
}

func TestBatchMaskRowsMatchPerPixelMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const M, N = 17, 130
	y := make([]float64, M*N)
	for i := range y {
		if rng.Float64() < 0.4 {
			y[i] = math.NaN()
		} else {
			y[i] = rng.NormFloat64()
		}
	}
	bm := NewBatchMask(M, N, y)
	if bm.WordsPerRow != MaskWords(N) {
		t.Fatal("WordsPerRow wrong")
	}
	for i := 0; i < M; i++ {
		want := MaskOf(y[i*N : (i+1)*N])
		row := bm.Row(i)
		for wi := range row {
			if row[wi] != want.Words[wi] {
				t.Fatalf("pixel %d word %d differs", i, wi)
			}
		}
		rm := bm.RowMask(i)
		if rm.N != N || rm.CountValid() != want.CountValid() {
			t.Fatal("RowMask wrong")
		}
	}
}

func TestBatchMaskEmpty(t *testing.T) {
	bm := NewBatchMask(0, 100, nil)
	if bm.M != 0 || len(bm.Words) != 0 {
		t.Fatal("empty batch mask wrong")
	}
	// Zero-length series: zero words, counts zero.
	m := MaskOf(nil)
	if len(m.Words) != 0 || m.CountValid() != 0 || !m.AllValid(0) {
		t.Fatal("empty series mask wrong")
	}
}
