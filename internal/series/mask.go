package series

import (
	"fmt"
	"math/bits"
)

// ValidMask is a per-pixel validity bitset: bit t (LSB-first, bit t%64
// of word t/64) is set iff observation t is valid (non-NaN). It is the
// CPU analogue of the paper's missing-value handling in the masked
// batched kernels (§III-C): the NaN pattern is discovered once and every
// subsequent kernel pass iterates mask words instead of re-testing
// each element with math.IsNaN. A word equal to AllValidWord means 64
// consecutive valid observations and unlocks the dense fast path —
// mirroring the paper's argument that padded, fully-valid groups run at
// regular-kernel speed.
type ValidMask struct {
	// N is the number of observations covered (bits beyond N are zero).
	N int
	// Words holds the ceil(N/64) validity words.
	Words []uint64
}

// AllValidWord is a fully-set validity word: 64 consecutive valid dates.
const AllValidWord = ^uint64(0)

// MaskWords returns the number of uint64 words needed for n bits.
func MaskWords(n int) int { return (n + 63) / 64 }

// FillMask writes y's validity bits into words (which must have
// MaskWords(len(y)) entries); trailing bits beyond len(y) are cleared.
//
//bfast:kernel
func FillMask(y []float64, words []uint64) {
	if len(words) != MaskWords(len(y)) {
		panic(fmt.Sprintf("series: mask has %d words for %d observations", len(words), len(y)))
	}
	for i := range words {
		words[i] = 0
	}
	for t, v := range y {
		if !IsMissing(v) {
			words[t/64] |= 1 << uint(t%64)
		}
	}
}

// MaskOf builds the validity mask for one series.
func MaskOf(y []float64) ValidMask {
	m := ValidMask{N: len(y), Words: make([]uint64, MaskWords(len(y)))}
	FillMask(y, m.Words)
	return m
}

// Valid reports whether observation t is valid.
func (m ValidMask) Valid(t int) bool {
	return t >= 0 && t < m.N && m.Words[t/64]&(1<<uint(t%64)) != 0
}

// CountValid returns N̄, the number of valid observations, via popcount.
func (m ValidMask) CountValid() int { return CountBits(m.Words, m.N) }

// CountValidPrefix returns n̄: the number of valid observations among
// the first n dates (the stable history period).
func (m ValidMask) CountValidPrefix(n int) int {
	if n > m.N {
		n = m.N
	}
	return CountBits(m.Words, n)
}

// AllValid reports whether every one of the first n observations is
// valid — the fast-path test mirroring the paper's padding argument.
func (m ValidMask) AllValid(n int) bool { return AllValidBits(m.Words, n) }

// CountBits returns the popcount of the first n bits of words.
//
//bfast:kernel
func CountBits(words []uint64, n int) int {
	if n <= 0 {
		return 0
	}
	full := n / 64
	c := 0
	for _, w := range words[:full] {
		c += bits.OnesCount64(w)
	}
	if tail := n % 64; tail != 0 {
		c += bits.OnesCount64(words[full] & (1<<uint(tail) - 1))
	}
	return c
}

// AllValidBits reports whether the first n bits of words are all set.
func AllValidBits(words []uint64, n int) bool {
	if n <= 0 {
		return true
	}
	full := n / 64
	for _, w := range words[:full] {
		if w != AllValidWord {
			return false
		}
	}
	if tail := n % 64; tail != 0 {
		m := uint64(1)<<uint(tail) - 1
		return words[full]&m == m
	}
	return true
}

// NthValid returns the original index of the k-th (0-based) valid
// observation among the first n dates, or -1 if fewer than k+1 exist.
// It skips whole words by popcount and bit-scans only the final word —
// the remapIndices step of Fig. 12 driven by the bitset.
//
//bfast:kernel
func NthValid(words []uint64, n, k int) int {
	if k < 0 {
		return -1
	}
	full := n / 64
	tail := n % 64
	for wi := 0; ; wi++ {
		var w uint64
		switch {
		case wi < full:
			w = words[wi]
		case wi == full && tail != 0:
			w = words[wi] & (1<<uint(tail) - 1)
		default:
			return -1
		}
		if c := bits.OnesCount64(w); k >= c {
			k -= c
			continue
		}
		for ; k > 0; k-- {
			w &= w - 1 // clear lowest set bit
		}
		return wi*64 + bits.TrailingZeros64(w)
	}
}

// BatchMask holds the validity bitsets of a whole M×N batch, one row of
// WordsPerRow words per pixel, computed once per batch and shared by
// every kernel pass (the "compute the NaN structure once" half of the
// paper's irregular-workload strategy).
type BatchMask struct {
	M, N        int
	WordsPerRow int
	Words       []uint64 // M * WordsPerRow, row-major
}

// NewBatchMask computes the validity bitsets for the flat row-major
// M×N matrix y (len(y) must be m*n).
func NewBatchMask(m, n int, y []float64) *BatchMask {
	if m < 0 || n < 0 || len(y) != m*n {
		panic(fmt.Sprintf("series: batch mask of %d values for %d×%d", len(y), m, n))
	}
	bm := &BatchMask{M: m, N: n, WordsPerRow: MaskWords(n)}
	bm.Words = make([]uint64, m*bm.WordsPerRow)
	for i := 0; i < m; i++ {
		FillMask(y[i*n:(i+1)*n], bm.Row(i))
	}
	return bm
}

// Row returns pixel i's validity words (a view, not a copy).
func (b *BatchMask) Row(i int) []uint64 {
	return b.Words[i*b.WordsPerRow : (i+1)*b.WordsPerRow]
}

// RowMask returns pixel i's words wrapped as a ValidMask.
func (b *BatchMask) RowMask(i int) ValidMask {
	return ValidMask{N: b.N, Words: b.Row(i)}
}

// AppendValidIndices appends the original indices of the valid
// observations among the first n dates to dst (in increasing order) and
// returns the extended slice. Used to rebuild compacted index scratch
// from the bitset without re-scanning the float data.
func AppendValidIndices(dst []int, words []uint64, n int) []int {
	full := n / 64
	for wi := 0; wi < full; wi++ {
		w := words[wi]
		base := wi * 64
		if w == AllValidWord {
			for t := base; t < base+64; t++ {
				dst = append(dst, t)
			}
			continue
		}
		for ; w != 0; w &= w - 1 {
			dst = append(dst, base+bits.TrailingZeros64(w))
		}
	}
	if tail := n % 64; tail != 0 {
		w := words[full] & (1<<uint(tail) - 1)
		for ; w != 0; w &= w - 1 {
			dst = append(dst, full*64+bits.TrailingZeros64(w))
		}
	}
	return dst
}
