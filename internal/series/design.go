// Package series provides the time-series primitives of BFAST-Monitor:
// construction of the harmonic season-trend design matrix (Eq. 3 of the
// paper, function mkX of Fig. 12), missing-value filtering with index
// bookkeeping (Alg. 1 line 1 / filterNaNsWKeys), and the index remapping
// that translates positions in the filtered series back to the original
// date axis (Alg. 1 line 13).
package series

import (
	"fmt"
	"math"
)

// NaN is the missing-value marker used throughout the library.
var NaN = math.NaN()

// IsMissing reports whether v is a missing observation.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// DesignMatrix holds the K×N design matrix X of Eq. (3): row 0 is the
// intercept, row 1 the linear trend, and rows 2..K-1 alternate
// sin/cos harmonic pairs. Data is row-major, so row j is the time profile
// of regressor j — the layout the batched kernels stream over.
type DesignMatrix struct {
	K, N int
	// Data is row-major: Data[j*N+t] is regressor j at date index t.
	Data []float64
}

// At returns regressor j at date t.
func (d *DesignMatrix) At(j, t int) float64 { return d.Data[j*d.N+t] }

// Column fills out (length K) with the pattern x_t of Eq. (3) for date t.
func (d *DesignMatrix) Column(t int, out []float64) {
	for j := 0; j < d.K; j++ {
		out[j] = d.Data[j*d.N+t]
	}
}

// MakeDesign builds the design matrix for N dates with k harmonic terms and
// observation frequency f (Eq. 3):
//
//	x_t = (1, t, sin(2πt/f), cos(2πt/f), ..., sin(2πkt/f), cos(2πkt/f))ᵀ
//
// Dates are t = 1..N as in the paper (1-based time index). K = 2k+2.
func MakeDesign(n, k int, f float64) (*DesignMatrix, error) {
	times := make([]float64, n)
	for t := range times {
		times[t] = float64(t + 1)
	}
	return MakeDesignAt(times, k, f, true)
}

// MakeDesignTrendless builds the design without the linear trend row
// (bfastmonitor's `response ~ harmon` formula): K = 2k+1. The season-only
// model is preferred for short or trend-free histories.
func MakeDesignTrendless(n, k int, f float64) (*DesignMatrix, error) {
	times := make([]float64, n)
	for t := range times {
		times[t] = float64(t + 1)
	}
	return MakeDesignAt(times, k, f, false)
}

// MakeDesignAt builds the design matrix for arbitrary time coordinates:
// times[i] is the (real-valued) acquisition time of observation i, in the
// same unit as one step of f (e.g. decimal years with f = 1, or date
// indices with f = 23). This is the irregular-calendar generalization of
// Eq. 3 used when acquisitions are not equally spaced. trend selects
// whether the linear-trend regressor is included.
func MakeDesignAt(times []float64, k int, f float64, trend bool) (*DesignMatrix, error) {
	n := len(times)
	if n <= 0 {
		return nil, fmt.Errorf("series: design needs N > 0, got %d", n)
	}
	if k < 0 {
		return nil, fmt.Errorf("series: negative harmonic order %d", k)
	}
	if f <= 0 {
		return nil, fmt.Errorf("series: frequency must be positive, got %g", f)
	}
	K := 2*k + 1
	if trend {
		K++
	}
	d := &DesignMatrix{K: K, N: n, Data: make([]float64, K*n)}
	for t := 0; t < n; t++ {
		tt := times[t]
		row := 0
		d.Data[row*n+t] = 1
		row++
		if trend {
			d.Data[row*n+t] = tt
			row++
		}
		for j := 1; j <= k; j++ {
			ang := 2 * math.Pi * float64(j) * tt / f
			d.Data[row*n+t] = math.Sin(ang)
			d.Data[(row+1)*n+t] = math.Cos(ang)
			row += 2
		}
	}
	return d, nil
}

// Filtered is the result of removing the missing values from one pixel's
// series: the compacted values, their original indices, and the valid
// counts for the history prefix and the whole series.
type Filtered struct {
	// Values holds the NValid valid observations in original order,
	// followed by NaN padding up to the original length (the padding
	// convention of Fig. 12, which keeps per-pixel buffers regular).
	Values []float64
	// Index[i] is the original 0-based date index of Values[i]
	// (only the first NValid entries are meaningful; the padding is -1).
	Index []int
	// NValidHist is n̄: the number of valid observations among the first
	// n dates (the stable history period).
	NValidHist int
	// NValid is N̄: the number of valid observations over all N dates.
	NValid int
}

// FilterMissing compacts the valid entries of y to the front, recording
// their original indices, and counts how many fall in the history period
// [0, n). It implements Alg. 1 line 1 / filterNaNsWKeys of Fig. 12; the
// output buffers keep the original length with NaN/-1 padding.
func FilterMissing(y []float64, n int) Filtered {
	if n < 0 || n > len(y) {
		panic(fmt.Sprintf("series: history length %d out of range [0,%d]", n, len(y)))
	}
	out := Filtered{
		Values: make([]float64, len(y)),
		Index:  make([]int, len(y)),
	}
	for i := range out.Values {
		out.Values[i] = NaN
		out.Index[i] = -1
	}
	w := 0
	for i, v := range y {
		if IsMissing(v) {
			continue
		}
		out.Values[w] = v
		out.Index[w] = i
		if i < n {
			out.NValidHist++
		}
		w++
	}
	out.NValid = w
	return out
}

// RemapIndex translates a 0-based position t̄ in the filtered monitoring
// period (i.e. filtered position n̄ + t̄) to the 0-based offset within the
// original monitoring period [n, N). It implements remapIndices of Fig. 12.
// It returns -1 if the position is out of range or maps before the
// monitoring start (which cannot happen for well-formed inputs).
func RemapIndex(f Filtered, tBar, n int) int {
	pos := f.NValidHist + tBar
	if tBar < 0 || pos >= f.NValid {
		return -1
	}
	orig := f.Index[pos]
	if orig < n {
		return -1
	}
	return orig - n
}

// CountValid returns the number of non-missing entries of y.
func CountValid(y []float64) int {
	c := 0
	for _, v := range y {
		if !IsMissing(v) {
			c++
		}
	}
	return c
}

// NaNFraction returns the fraction of missing entries in y (0 for empty y).
func NaNFraction(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	return 1 - float64(CountValid(y))/float64(len(y))
}
