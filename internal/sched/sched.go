// Package sched provides the shared bounded worker pool behind every
// host-parallel fan-out in the repository (the batched detection
// strategies, the CLike baseline, stable-history trimming and the
// pipeline's phase overlap).
//
// The irregular per-pixel workload of the paper — every pixel has a
// different NaN pattern, hence a different effective problem size —
// makes static contiguous partitioning a poor fit: with the
// spatially-correlated cloud masks of internal/workload, adjacent pixels
// share their missing-value structure, so equally-sized chunks carry very
// unequal work and workers go idle (the load imbalance §III-C of the
// paper designs its same-size kernel batches around). The pool instead
// hands out small block-cyclic ranges from a single atomic counter:
// every worker "steals" the next block the moment it finishes its
// current one, so the imbalance is bounded by one block rather than by
// a whole chunk.
//
// The pool is bounded: at most `bound` helper goroutines run at any
// moment across all concurrent ForEach/Go calls, and the caller of a
// parallel loop always participates as worker 0. That guarantees
// progress (and freedom from pool-exhaustion deadlock) even when loops
// nest or the pool is saturated by background tasks.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"bfast/internal/obs"
)

// Scheduler metrics, published into the default obs registry (DESIGN.md
// §6). BlocksRun counts steal units actually executed; BlocksAbandoned
// counts steal units skipped because the loop's context was cancelled —
// the difference a cancelled request makes. Exported so tests (and
// /metrics consumers) can assert on cancellation behavior.
var (
	StatLoops           = obs.Default().Counter("sched.loops")
	StatBlocksRun       = obs.Default().Counter("sched.blocks.run")
	StatBlocksAbandoned = obs.Default().Counter("sched.blocks.abandoned")
	StatHelpersSpawned  = obs.Default().Counter("sched.helpers.spawned")
)

// Workload-skew introspection (DESIGN.md §7). StatWorkerBlocks is the
// distribution of steal units executed per worker per loop — flat for a
// balanced loop, long-tailed when a NaN-skewed scene makes some blocks
// much heavier than others. StatImbalancePct records, per multi-worker
// loop, how much extra the busiest worker carried over the mean
// (100·(max−mean)/mean): near 0 means stealing equalized the skew,
// large values mean block granularity is too coarse for the skew.
var (
	StatWorkerBlocks = obs.Default().Histogram("sched.worker.blocks", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024})
	StatImbalancePct = obs.Default().Histogram("sched.loop.imbalance_pct", []float64{1, 2, 5, 10, 25, 50, 100, 200})
	// StatImbalanceLast mirrors the latest imbalance sample as a gauge so
	// threshold watchers (the diagnostics profile-capture rules) can read
	// "how skewed is the scheduler right now" without unwinding histogram
	// deltas.
	StatImbalanceLast = obs.Default().Gauge("sched.loop.imbalance_last_pct")
)

// DefaultGrain is the default number of items per block-cyclic block.
// Small enough to balance NaN-skewed per-pixel costs, large enough that
// pixels of a block still share cache lines of the staged batch arrays
// and the atomic counter is not contended.
const DefaultGrain = 16

// Pool is a bounded worker pool. The zero value is not usable;
// construct with New or use the process-wide Shared pool.
type Pool struct {
	bound int
	sem   chan struct{}
}

// New returns a pool allowing at most bound concurrent helper
// goroutines (<= 0 means GOMAXPROCS).
func New(bound int) *Pool {
	if bound <= 0 {
		bound = runtime.GOMAXPROCS(0)
	}
	return &Pool{bound: bound, sem: make(chan struct{}, bound)}
}

var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide pool, sized to GOMAXPROCS at first
// use. All library fan-outs run on it by default, so total helper
// concurrency stays bounded no matter how many batches are in flight.
func Shared() *Pool {
	sharedOnce.Do(func() { shared = New(0) })
	return shared
}

// Bound returns the pool's helper-goroutine bound.
func (p *Pool) Bound() int { return p.bound }

// Workers returns the effective worker count for a loop over m items
// when the caller requested `requested` workers (<= 0 means the pool
// bound +1 for the participating caller, mirroring the old
// GOMAXPROCS default). The result is clamped to [1, m] for m > 0 and
// is 0 for m <= 0. Callers sizing per-worker scratch should allocate
// exactly this many slots.
func (p *Pool) Workers(requested, m int) int {
	if m <= 0 {
		return 0
	}
	w := requested
	if w <= 0 {
		w = p.bound
	}
	if w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs body over [0, m) split into block-cyclic ranges of
// `grain` items (<= 0 means DefaultGrain), dispatched to at most
// `workers` workers (see Workers for the <= 0 default) from a shared
// atomic counter. body is called with the worker id in [0, Workers())
// — stable per goroutine, so it can index per-worker scratch — and a
// half-open range [lo, hi).
//
// The calling goroutine always executes as worker 0; helpers are
// spawned only while the pool has capacity, so nested or concurrent
// loops degrade to fewer workers instead of deadlocking.
func (p *Pool) ForEach(m, workers, grain int, body func(worker, lo, hi int)) {
	//lint:allow ctxfirst -- pre-ctx compat wrapper kept for the seed reference paths; new code calls ForEachCtx
	_ = p.ForEachCtx(context.Background(), m, workers, grain, body)
}

// ForEachCtx is ForEach with cooperative cancellation at steal-unit
// granularity: every worker re-checks ctx before claiming its next
// block, so a cancelled context abandons the remaining blocks while
// in-flight blocks run to completion (no partial body calls, no torn
// per-pixel state). It returns ctx.Err() if the loop was cut short and
// nil if every block ran. An already-cancelled context executes zero
// blocks.
func (p *Pool) ForEachCtx(ctx context.Context, m, workers, grain int, body func(worker, lo, hi int)) error {
	if m <= 0 {
		return ctx.Err()
	}
	StatLoops.Inc()
	w := p.Workers(workers, m)
	g := grain
	if g <= 0 {
		g = DefaultGrain
	}
	blocks := (m + g - 1) / g
	if w > blocks {
		w = blocks
	}
	_, sp := obs.StartSpan(ctx, "sched.foreach")
	sp.SetAttr("items", m)
	sp.SetAttr("blocks", blocks)
	sp.SetAttr("workers", w)
	sp.SetAttr("grain", g)
	counts := make([]int64, w)
	var next atomic.Int64
	run := func(id int) {
		n := int64(0)
		for ctx.Err() == nil {
			b := int(next.Add(1)) - 1
			if b >= blocks {
				break
			}
			lo := b * g
			hi := lo + g
			if hi > m {
				hi = m
			}
			StatBlocksRun.Inc()
			body(id, lo, hi)
			n++
		}
		counts[id] = n
	}
	if w <= 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		for id := 1; id < w; id++ {
			select {
			case p.sem <- struct{}{}:
				wg.Add(1)
				StatHelpersSpawned.Inc()
				go func(id int) {
					defer wg.Done()
					defer func() { <-p.sem }()
					run(id)
				}(id)
			default:
				// Pool saturated: proceed with the helpers we got; the
				// caller below still drains every block.
			}
		}
		run(0)
		wg.Wait() // also the happens-before edge for the helpers' counts[id] writes
	}
	recordLoopSkew(sp, counts)
	if err := ctx.Err(); err != nil {
		claimed := int(next.Load())
		if claimed > blocks {
			claimed = blocks
		}
		abandoned := int64(blocks - claimed)
		StatBlocksAbandoned.Add(abandoned)
		sp.SetAttr("abandoned", abandoned)
		sp.End()
		return err
	}
	sp.End()
	return nil
}

// recordLoopSkew publishes the per-worker steal counts of one finished
// loop into the skew histograms and onto its span. A worker that claimed
// zero blocks (pool saturated before it got a slot, or the loop drained
// first) still counts: an all-but-one-idle loop IS the skew signal.
func recordLoopSkew(sp *obs.Span, counts []int64) {
	var total, max int64
	for _, c := range counts {
		StatWorkerBlocks.Observe(float64(c))
		total += c
		if c > max {
			max = c
		}
	}
	if len(counts) > 1 && total > 0 {
		mean := float64(total) / float64(len(counts))
		imb := 100 * (float64(max) - mean) / mean
		StatImbalancePct.Observe(imb)
		StatImbalanceLast.Set(int64(imb))
		sp.SetAttr("imbalance_pct", imb)
	}
}

// ForEachScratch is ForEach with a per-worker scratch lifecycle: mk is
// invoked once per participating worker (lazily, on its first block) and
// the same scratch value is passed to every body call of that worker —
// the pattern the paper's C baseline uses per OpenMP thread (footnote
// 10) to keep the hot loop allocation-free.
func ForEachScratch[S any](p *Pool, m, workers, grain int, mk func() S, body func(s S, lo, hi int)) {
	//lint:allow ctxfirst -- pre-ctx compat wrapper kept for the seed reference paths; new code calls ForEachScratchCtx
	_ = ForEachScratchCtx(context.Background(), p, m, workers, grain, mk, body)
}

// ForEachScratchCtx is ForEachScratch over ForEachCtx: same per-worker
// scratch lifecycle, cancellation checked before every block claim.
func ForEachScratchCtx[S any](ctx context.Context, p *Pool, m, workers, grain int, mk func() S, body func(s S, lo, hi int)) error {
	if m <= 0 {
		return ctx.Err()
	}
	w := p.Workers(workers, m)
	scratch := make([]S, w)
	made := make([]bool, w)
	return p.ForEachCtx(ctx, m, w, grain, func(id, lo, hi int) {
		if !made[id] {
			scratch[id] = mk()
			made[id] = true
		}
		body(scratch[id], lo, hi)
	})
}

// Task is a handle to an asynchronous function started with Go.
type Task struct {
	done chan struct{}
	err  error
}

// Go runs fn asynchronously. If the pool has no capacity the function
// runs synchronously in the caller (the bounded-pool equivalent of
// "go fn()"), so Go never blocks waiting for a slot. The returned
// Task's Wait blocks until fn has finished and returns its error.
func (p *Pool) Go(fn func() error) *Task {
	t := &Task{done: make(chan struct{})}
	select {
	case p.sem <- struct{}{}:
		go func() {
			defer close(t.done)
			defer func() { <-p.sem }()
			t.err = fn()
		}()
	default:
		t.err = fn()
		close(t.done)
	}
	return t
}

// Wait blocks until the task completes and returns its error.
func (t *Task) Wait() error {
	<-t.done
	return t.err
}
