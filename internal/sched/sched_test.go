package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachCoversAllIndicesOnce checks that every index of [0, m) is
// visited exactly once for a spread of sizes, worker counts and grains.
func TestForEachCoversAllIndicesOnce(t *testing.T) {
	p := New(8)
	for _, m := range []int{0, 1, 2, 15, 16, 17, 64, 1000, 4097} {
		for _, w := range []int{0, 1, 2, 7, 64} {
			for _, g := range []int{0, 1, 3, 64} {
				seen := make([]int32, m)
				p.ForEach(m, w, g, func(_, lo, hi int) {
					if lo < 0 || hi > m || lo >= hi {
						t.Errorf("m=%d w=%d g=%d: bad range [%d,%d)", m, w, g, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("m=%d w=%d g=%d: index %d visited %d times", m, w, g, i, c)
					}
				}
			}
		}
	}
}

// TestForEachWorkerIDsInRange checks the scratch-indexing contract:
// ids are within [0, Workers(requested, m)) and stable per goroutine.
func TestForEachWorkerIDsInRange(t *testing.T) {
	p := New(4)
	const m = 500
	w := p.Workers(0, m)
	var mu sync.Mutex
	used := map[int]bool{}
	p.ForEach(m, 0, 4, func(id, lo, hi int) {
		if id < 0 || id >= w {
			t.Errorf("worker id %d out of range [0,%d)", id, w)
		}
		mu.Lock()
		used[id] = true
		mu.Unlock()
	})
	if len(used) == 0 {
		t.Fatal("no workers ran")
	}
}

func TestWorkersClamp(t *testing.T) {
	p := New(6)
	cases := []struct{ req, m, want int }{
		{0, 100, 6}, // default = bound
		{3, 100, 3}, // explicit request
		{12, 4, 4},  // workers > m clamps to m
		{5, 0, 0},   // empty loop
		{0, -3, 0},  // negative m
		{1, 1, 1},   // minimum
		{-2, 10, 6}, // negative request = default
		{100, 1, 1}, // single item
	}
	for _, c := range cases {
		if got := p.Workers(c.req, c.m); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.req, c.m, got, c.want)
		}
	}
}

// TestForEachEmptyAndTiny: m == 0 must not call body; m smaller than any
// worker/grain combination must still cover everything.
func TestForEachEmptyAndTiny(t *testing.T) {
	p := New(8)
	called := false
	p.ForEach(0, 8, 16, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("body called for m == 0")
	}
	var n int32
	p.ForEach(1, 64, 1024, func(_, lo, hi int) { atomic.AddInt32(&n, int32(hi-lo)) })
	if n != 1 {
		t.Fatalf("tiny loop covered %d items, want 1", n)
	}
}

// TestForEachScratchLifecycle checks that scratch is created once per
// participating worker and reused across its blocks.
func TestForEachScratchLifecycle(t *testing.T) {
	p := New(4)
	const m = 1000
	var created int32
	type scratch struct{ sum int }
	var mu sync.Mutex
	total := 0
	ForEachScratch(p, m, 0, 8, func() *scratch {
		atomic.AddInt32(&created, 1)
		return &scratch{}
	}, func(s *scratch, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.sum += i
		}
		mu.Lock()
		total += hi - lo
		mu.Unlock()
	})
	if total != m {
		t.Fatalf("covered %d items, want %d", total, m)
	}
	if c := int(created); c < 1 || c > p.Workers(0, m) {
		t.Fatalf("created %d scratches, want between 1 and %d", c, p.Workers(0, m))
	}
}

// TestForEachNested: a parallel loop inside a parallel loop must not
// deadlock even when the pool is fully saturated, because callers
// always participate.
func TestForEachNested(t *testing.T) {
	p := New(2)
	var n int64
	p.ForEach(8, 8, 1, func(_, lo, hi int) {
		p.ForEach(100, 8, 4, func(_, l, h int) {
			atomic.AddInt64(&n, int64(h-l))
		})
	})
	if n != 800 {
		t.Fatalf("nested loops covered %d, want 800", n)
	}
}

func TestGoRunsAndPropagatesError(t *testing.T) {
	p := New(2)
	boom := errors.New("boom")
	tk1 := p.Go(func() error { return nil })
	tk2 := p.Go(func() error { return boom })
	if err := tk1.Wait(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := tk2.Wait(); err != boom {
		t.Fatalf("got %v, want boom", err)
	}
}

// TestGoSaturatedRunsInline: with a zero-capacity... the bound is at
// least 1, so saturate it with a blocked task and verify Go still
// completes synchronously rather than blocking.
func TestGoSaturatedRunsInline(t *testing.T) {
	p := New(1)
	release := make(chan struct{})
	bg := p.Go(func() error { <-release; return nil })
	ran := false
	tk := p.Go(func() error { ran = true; return nil })
	if err := tk.Wait(); err != nil || !ran {
		t.Fatal("saturated Go must run inline")
	}
	close(release)
	if err := bg.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestForEachCtxPreCancelled: an already-cancelled context must execute
// zero steal units and return context.Canceled promptly.
func TestForEachCtxPreCancelled(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := StatBlocksRun.Value()
	called := int32(0)
	err := p.ForEachCtx(ctx, 10000, 4, 16, func(_, _, _ int) { atomic.AddInt32(&called, 1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called != 0 {
		t.Fatalf("%d blocks ran under a pre-cancelled context", called)
	}
	if d := StatBlocksRun.Value() - before; d != 0 {
		t.Fatalf("steal-unit counter advanced by %d under a pre-cancelled context", d)
	}
}

// TestForEachCtxMidLoopCancel: cancelling from inside a block abandons
// the remaining steal units (in-flight blocks finish; later ones are
// never claimed) and the abandoned counter accounts for them.
func TestForEachCtxMidLoopCancel(t *testing.T) {
	p := New(1) // single worker: deterministic sequential block order
	ctx, cancel := context.WithCancel(context.Background())
	const m, grain = 1000, 10
	beforeAbandoned := StatBlocksAbandoned.Value()
	ran := 0
	err := p.ForEachCtx(ctx, m, 1, grain, func(_, lo, hi int) {
		ran++
		if ran == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d blocks, want exactly 3 (in-flight finishes, rest abandoned)", ran)
	}
	wantAbandoned := int64(m/grain - 3)
	if d := StatBlocksAbandoned.Value() - beforeAbandoned; d != wantAbandoned {
		t.Fatalf("abandoned counter advanced by %d, want %d", d, wantAbandoned)
	}
}

// TestForEachCtxUncancelledReturnsNil: the ctx path must be a strict
// superset of ForEach — full coverage, nil error.
func TestForEachCtxUncancelledReturnsNil(t *testing.T) {
	p := New(4)
	seen := make([]int32, 777)
	err := p.ForEachCtx(context.Background(), len(seen), 0, 8, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// TestForEachScratchCtxCancel: the scratch variant propagates
// cancellation the same way.
func TestForEachScratchCtxCancel(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachScratchCtx(ctx, p, 100, 2, 4, func() int { return 0 }, func(_, _, _ int) {
		t.Error("body ran under a pre-cancelled context")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedIsSingletonAndBounded(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared must return the same pool")
	}
	if Shared().Bound() < 1 {
		t.Fatal("shared pool must have positive bound")
	}
}

// TestLoopSkewMetrics: per-worker steal counts must sum to the block
// count, and a multi-worker loop must record one imbalance sample.
func TestLoopSkewMetrics(t *testing.T) {
	beforeBlocks := StatWorkerBlocks.Count()
	beforeImb := StatImbalancePct.Count()

	p := New(4)
	var ran atomic.Int64
	p.ForEach(1000, 4, 8, func(_, lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != 1000 {
		t.Fatalf("ran %d items, want 1000", ran.Load())
	}

	afterBlocks := StatWorkerBlocks.Count()
	afterImb := StatImbalancePct.Count()
	// 1000 items at grain 8 -> 125 blocks; one count sample per worker.
	// Other loops (helpers of other tests) may land concurrently, so
	// assert >= rather than ==.
	if afterBlocks-beforeBlocks < 1 {
		t.Fatalf("no per-worker block samples recorded (%d -> %d)", beforeBlocks, afterBlocks)
	}
	if afterImb-beforeImb < 1 {
		t.Fatalf("no imbalance sample recorded for a multi-worker loop")
	}
}

// TestRecordLoopSkew pins the imbalance computation directly.
func TestRecordLoopSkew(t *testing.T) {
	sumBefore := StatImbalancePct.Sum()
	// max=30, mean=15 -> 100*(30-15)/15 = 100%.
	recordLoopSkew(nil, []int64{0, 30})
	nAfter := StatImbalancePct.Count()
	if got := StatImbalancePct.Sum() - sumBefore; got != 100 {
		t.Fatalf("imbalance sample = %v, want 100", got)
	}
	// Single-worker and empty loops must not record imbalance.
	recordLoopSkew(nil, []int64{7})
	recordLoopSkew(nil, []int64{0, 0})
	if StatImbalancePct.Count() != nAfter {
		t.Fatal("single-worker or empty loop recorded an imbalance sample")
	}
}
