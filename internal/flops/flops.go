// Package flops computes the specification flop counts of §IV-A: the
// worst-case number of floating-point operations derived algebraically
// from the high-level specification (Fig. 12), assuming every value is
// valid and every flop — including sqrt and log — has unit cost. Dividing
// these counts by runtime yields GFlops^Sp, the normalized-throughput
// metric the paper reports, which is comparable across differently
// optimized code versions and across datasets.
package flops

// Sizes carries the dataset-specific parameters of the formulas.
type Sizes struct {
	// M is the number of pixels.
	M int
	// N is the time-series length.
	N int
	// History is n, the history-period length.
	History int
	// K is the number of model coefficients (2k+2).
	K int
	// HFrac is the MOSUM window fraction (h = hf·n).
	HFrac float64
}

// MaskedMatMul is the Fig. 6 kernel count: 4·M·n·K² (one multiply for
// a·b, one for the mask factor, one multiply-add for the accumulation,
// per (pixel, j₁, j₂, date)).
func (s Sizes) MaskedMatMul() float64 {
	return 4 * f(s.M) * f(s.History) * f(s.K) * f(s.K)
}

// MatInv is the Fig. 7 kernel count: 6·M·K³ (K elimination steps over the
// K×2K adjoined matrix, ~3 flops per element).
func (s Sizes) MatInv() float64 {
	return 6 * f(s.M) * f(s.K) * f(s.K) * f(s.K)
}

// MvMulFilt counts ker 4 (β₀ = X_h·y_h under mask): 3·M·n·K.
func (s Sizes) MvMulFilt() float64 {
	return 3 * f(s.M) * f(s.History) * f(s.K)
}

// MvMul counts ker 5 (K×K matrix–vector): 2·M·K².
func (s Sizes) MvMul() float64 {
	return 2 * f(s.M) * f(s.K) * f(s.K)
}

// Predict counts ker 6 (ŷ = Xᵀβ over all N dates): 2·M·N·K.
func (s Sizes) Predict() float64 {
	return 2 * f(s.M) * f(s.N) * f(s.K)
}

// Filter counts ker 7 (residual map2, validity scan, two scatters): 6·M·N.
func (s Sizes) Filter() float64 {
	return 6 * f(s.M) * f(s.N)
}

// Sigma counts ker 8 (n̄ reduce, squared-residual reduce, σ̂): 3·M·n + 4·M.
func (s Sizes) Sigma() float64 {
	return 3*f(s.M)*f(s.History) + 4*f(s.M)
}

// MosumInit counts ker 9 (first window reduce): M·h.
func (s Sizes) MosumInit() float64 {
	h := s.HFrac * f(s.History)
	if h < 1 {
		h = 1
	}
	return f(s.M) * h
}

// MosumScan counts ker 10 (difference map, scan, normalization, boundary
// with sqrt/log, comparison, mean and first-break reduces): 9·M·(N−n).
func (s Sizes) MosumScan() float64 {
	return 9 * f(s.M) * f(s.N-s.History)
}

// App is the whole-application count: the sum of all kernel formulas.
// This is the denominator normalization of Fig. 8.
func (s Sizes) App() float64 {
	return s.MaskedMatMul() + s.MatInv() + s.MvMulFilt() + s.MvMul() +
		s.Predict() + s.Filter() + s.Sigma() + s.MosumInit() + s.MosumScan()
}

func f(v int) float64 { return float64(v) }
