package flops

import "testing"

func d1() Sizes {
	return Sizes{M: 16384, N: 1024, History: 512, K: 8, HFrac: 0.25}
}

func TestMaskedMatMulFormula(t *testing.T) {
	// 4·M·n·K² for D1 = 4·16384·512·64.
	if got, want := d1().MaskedMatMul(), 4.0*16384*512*64; got != want {
		t.Fatalf("MaskedMatMul = %v, want %v", got, want)
	}
}

func TestMatInvFormula(t *testing.T) {
	if got, want := d1().MatInv(), 6.0*16384*512; got != want {
		t.Fatalf("MatInv = %v, want %v", got, want)
	}
}

func TestAppIsSumOfKernels(t *testing.T) {
	s := d1()
	sum := s.MaskedMatMul() + s.MatInv() + s.MvMulFilt() + s.MvMul() +
		s.Predict() + s.Filter() + s.Sigma() + s.MosumInit() + s.MosumScan()
	if s.App() != sum {
		t.Fatalf("App = %v, want %v", s.App(), sum)
	}
}

func TestMaskedMatMulDominatesApp(t *testing.T) {
	// For the paper's datasets the masked matmul is the largest single
	// term (that is why it is the headline optimization).
	s := d1()
	if s.MaskedMatMul() < 0.5*s.App() {
		t.Fatalf("matmul %v should dominate app %v", s.MaskedMatMul(), s.App())
	}
}

func TestMosumInitFloorsWindow(t *testing.T) {
	s := Sizes{M: 10, N: 8, History: 4, K: 2, HFrac: 0.01}
	if s.MosumInit() != 10 {
		t.Fatalf("window must floor at 1 per pixel, got %v", s.MosumInit())
	}
}

func TestFormulasScaleLinearlyInM(t *testing.T) {
	a := d1()
	b := a
	b.M *= 2
	if b.App() != 2*a.App() {
		t.Fatalf("App must scale linearly in M: %v vs %v", b.App(), a.App())
	}
}
