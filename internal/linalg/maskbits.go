package linalg

import (
	"fmt"
	"math/bits"
)

// This file holds the bitset-driven variants of the masked kernels
// (mmMulFilt / mvMulFilt of Fig. 4): instead of re-testing every element
// with math.IsNaN, they walk a precomputed validity bitset (bit q set =
// date q valid) word by word, skipping invalid dates by bit arithmetic
// and taking a dense fast path on fully-set words. The iteration order
// over valid dates is increasing q — exactly the order of the
// element-wise masked kernels — so the floating-point accumulation, and
// hence the result, is bit-identical.

const allOnes = ^uint64(0)

// MaskedCrossProductBits computes M = X_h · X_hᵀ over the dates whose
// validity bit is set, writing the K×K result into out (length K²).
// X_h is K×n; words must cover at least n bits. Bit-identical to
// MaskedCrossProduct with a NaN mask of the same validity pattern.
//
//bfast:kernel
func MaskedCrossProductBits(xh *Matrix, words []uint64, out []float64) {
	k := xh.Rows
	n := xh.Cols
	if len(out) != k*k {
		panic(fmt.Sprintf("linalg: MaskedCrossProductBits out length %d != %d", len(out), k*k))
	}
	if len(words) < (n+63)/64 {
		panic(fmt.Sprintf("linalg: MaskedCrossProductBits mask has %d words for %d dates", len(words), n))
	}
	for j1 := 0; j1 < k; j1++ {
		r1 := xh.Data[j1*n : (j1+1)*n]
		for j2 := j1; j2 < k; j2++ {
			r2 := xh.Data[j2*n : (j2+1)*n]
			acc := maskedDot(r1, r2, words, n)
			out[j1*k+j2] = acc
			out[j2*k+j1] = acc
		}
	}
}

// MaskedMatVecBits computes X_h · y over the dates whose validity bit is
// set, writing into out (length K). Bit-identical to MaskedMatVec.
//
//bfast:kernel
func MaskedMatVecBits(xh *Matrix, y []float64, words []uint64, out []float64) {
	k := xh.Rows
	n := xh.Cols
	if len(y) != n {
		panic(fmt.Sprintf("linalg: MaskedMatVecBits length %d != %d cols", len(y), n))
	}
	if len(out) != k {
		panic(fmt.Sprintf("linalg: MaskedMatVecBits out length %d != %d", len(out), k))
	}
	if len(words) < (n+63)/64 {
		panic(fmt.Sprintf("linalg: MaskedMatVecBits mask has %d words for %d dates", len(words), n))
	}
	for j := 0; j < k; j++ {
		out[j] = maskedDot(xh.Data[j*n:(j+1)*n], y, words, n)
	}
}

// maskedDot accumulates sum_q a[q]*b[q] over the set bits q < n of
// words, in increasing q. Fully-set words take the dense inner loop.
//
//bfast:kernel
func maskedDot(a, b []float64, words []uint64, n int) float64 {
	var acc float64
	full := n / 64
	for wi := 0; wi < full; wi++ {
		w := words[wi]
		base := wi * 64
		switch w {
		case allOnes:
			for q := base; q < base+64; q++ {
				acc += a[q] * b[q]
			}
		case 0:
		default:
			for ; w != 0; w &= w - 1 {
				q := base + bits.TrailingZeros64(w)
				acc += a[q] * b[q]
			}
		}
	}
	if tail := n % 64; tail != 0 {
		w := words[full] & (1<<uint(tail) - 1)
		base := full * 64
		for ; w != 0; w &= w - 1 {
			q := base + bits.TrailingZeros64(w)
			acc += a[q] * b[q]
		}
	}
	return acc
}
