package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a matrix cannot be inverted.
var ErrSingular = errors.New("linalg: singular matrix")

// InvertGaussJordan inverts a square matrix using the pivot-free
// Gauss-Jordan elimination of the paper (Fig. 5): the matrix is adjoined
// with the identity and reduced with a fixed "rotate up" scheme — at step q
// row 0 is the pivot row for column q and rows shift upward. This mirrors
// the GPU kernel exactly, including its behaviour on zero pivots (rows are
// rotated unchanged), so the simulator kernels and this host reference can
// be compared bit-for-bit in float32 tests.
//
// For well-conditioned normal matrices (the BFAST use case, K ≤ ~16) this
// is accurate; for general matrices prefer InvertPivot.
func InvertGaussJordan(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: InvertGaussJordan requires square matrix")
	}
	k := a.Rows
	w := 2 * k
	// Adjoin identity: sh is k x 2k.
	sh := make([]float64, k*w)
	for i := 0; i < k; i++ {
		copy(sh[i*w:i*w+k], a.Data[i*k:(i+1)*k])
		sh[i*w+k+i] = 1
	}
	tmp := make([]float64, k*w)
	for q := 0; q < k; q++ {
		vq := sh[0*w+q]
		for k1 := 0; k1 < k; k1++ {
			for k2 := 0; k2 < w; k2++ {
				var t float64
				// Exact-zero pivot test on purpose: a NaN pivot is != 0,
				// so NaN flows through the division and poisons the left
				// block, which the identity check below rejects — the
				// same propagation the Futhark kernel relies on.
				//lint:allow nanguard -- exact-zero pivot sentinel; NaN pivots propagate and are caught by the identity check
				if vq == 0 {
					t = sh[k1*w+k2]
				} else {
					x := sh[0*w+k2] / vq
					if k1 == k-1 {
						t = x
					} else {
						t = sh[(k1+1)*w+k2] - sh[(k1+1)*w+q]*x
					}
				}
				tmp[k1*w+k2] = t
			}
		}
		sh, tmp = tmp, sh
	}
	out := NewMatrix(k, k)
	singular := false
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := sh[i*w+k+j]
			out.Set(i, j, v)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				singular = true
			}
		}
	}
	// The pivot-free scheme signals singularity by leaving the left block
	// different from the identity (or by producing non-finite values).
	if singular || !leftBlockIsIdentity(sh, k, w, 1e-6) {
		return out, ErrSingular
	}
	return out, nil
}

func leftBlockIsIdentity(sh []float64, k, w int, tol float64) bool {
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			v := sh[i*w+j]
			if math.IsNaN(v) || math.Abs(v-want) > tol {
				return false
			}
		}
	}
	return true
}

// InvertPivot inverts a square matrix with partially-pivoted Gauss-Jordan
// elimination. This is the robust library path used when the pixel's normal
// matrix is poorly conditioned; the paper's GPU kernel omits pivoting
// because BFAST normal matrices are diagonally dominant in practice.
func InvertPivot(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: InvertPivot requires square matrix")
	}
	k := a.Rows
	w := 2 * k
	sh := make([]float64, k*w)
	for i := 0; i < k; i++ {
		copy(sh[i*w:i*w+k], a.Data[i*k:(i+1)*k])
		sh[i*w+k+i] = 1
	}
	for col := 0; col < k; col++ {
		// Find the pivot row.
		piv, best := -1, 0.0
		for r := col; r < k; r++ {
			if v := math.Abs(sh[r*w+col]); v > best {
				best, piv = v, r
			}
		}
		//lint:allow nanguard -- best is math.Abs-folded and NaN/Inf are rejected explicitly in the same condition
		if piv < 0 || best == 0 || math.IsNaN(best) || math.IsInf(best, 0) {
			// A non-finite pivot means the input carried ±Inf; scaling by
			// 1/±Inf would zero the row and silently yield a garbage
			// finite "inverse", so flag it here instead.
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < w; j++ {
				sh[col*w+j], sh[piv*w+j] = sh[piv*w+j], sh[col*w+j]
			}
		}
		pv := sh[col*w+col]
		inv := 1 / pv
		for j := 0; j < w; j++ {
			sh[col*w+j] *= inv
		}
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := sh[r*w+col]
			// Exact-zero skip: NaN factors are != 0 and eliminate
			// normally, so missing-value poison still spreads.
			//lint:allow nanguard -- exact-zero elimination skip; NaN factors take the eliminate path
			if f == 0 {
				continue
			}
			for j := 0; j < w; j++ {
				sh[r*w+j] -= f * sh[col*w+j]
			}
		}
	}
	out := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		copy(out.Data[i*k:(i+1)*k], sh[i*w+k:i*w+w])
	}
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return out, nil
}

// SolveSPD solves A·x = b for a symmetric positive-definite A via Cholesky
// decomposition. BFAST normal matrices X_h·X_hᵀ are SPD whenever the pixel
// has at least K linearly-independent valid history dates, so this is the
// numerically preferred fitting path offered by the library API.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		return nil, errors.New("linalg: SolveSPD shape mismatch")
	}
	k := a.Rows
	// Cholesky: A = L·Lᵀ with L lower triangular.
	l := make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for p := 0; p < j; p++ {
				sum -= l[i*k+p] * l[j*k+p]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrSingular
				}
				l[i*k+i] = math.Sqrt(sum)
			} else {
				l[i*k+j] = sum / l[j*k+j]
			}
		}
	}
	// Forward substitution: L·y = b.
	y := make([]float64, k)
	for i := 0; i < k; i++ {
		sum := b[i]
		for p := 0; p < i; p++ {
			sum -= l[i*k+p] * y[p]
		}
		y[i] = sum / l[i*k+i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		sum := y[i]
		for p := i + 1; p < k; p++ {
			sum -= l[p*k+i] * x[p]
		}
		x[i] = sum / l[i*k+i]
	}
	return x, nil
}
