// Package linalg provides the dense linear-algebra kernels that underpin
// BFAST-Monitor: ordinary and NaN-masked matrix products, Gauss-Jordan
// inversion (with and without pivoting), and batched wrappers that operate
// on one small matrix per pixel.
//
// All matrices are dense, row-major, and stored in flat slices. Two element
// types are supported: float64 for the reference/library path and float32
// for the kernel/simulator path (the paper's GPU code is single precision).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero-valued r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom wraps data (len must be r*c) without copying.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Equal reports whether m and o have the same shape and elements within tol.
// NaNs in corresponding positions compare equal.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		w := o.Data[i]
		if math.IsNaN(v) || math.IsNaN(w) {
			if math.IsNaN(v) != math.IsNaN(w) {
				return false
			}
			continue
		}
		if math.Abs(v-w) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// MatMul computes C = A·B for dense matrices. Panics on shape mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMul shape mismatch %dx%d · %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			// Sparse skip over the design matrix's structural zeros
			// (intercept/harmonic columns). Inputs here are generated
			// design entries, never NaN-coded series data.
			//lint:allow nanguard -- exact-zero sparsity skip; MatMul operands are NaN-free design matrices
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatVec computes A·x for a dense matrix and vector.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MatVec shape mismatch %dx%d · %d",
			a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var acc float64
		for j, v := range row {
			acc += v * x[j]
		}
		out[i] = acc
	}
	return out
}

// MaskedCrossProduct computes M = X_h · X_hᵀ where columns q of X_h with
// NaN mask values (mask[q] is NaN) are excluded; X_h is K×n and the result
// is K×K. This is the paper's mmMulFilt (Fig. 4a) for a single pixel:
// the mask is the pixel's raw history series y[:n], and a NaN entry removes
// the corresponding date column from the cross product.
func MaskedCrossProduct(xh *Matrix, mask []float64) *Matrix {
	if xh.Cols != len(mask) {
		panic(fmt.Sprintf("linalg: MaskedCrossProduct mask length %d != %d cols",
			len(mask), xh.Cols))
	}
	k := xh.Rows
	n := xh.Cols
	out := NewMatrix(k, k)
	for j1 := 0; j1 < k; j1++ {
		r1 := xh.Data[j1*n : (j1+1)*n]
		for j2 := j1; j2 < k; j2++ {
			r2 := xh.Data[j2*n : (j2+1)*n]
			var acc float64
			for q := 0; q < n; q++ {
				if math.IsNaN(mask[q]) {
					continue
				}
				acc += r1[q] * r2[q]
			}
			out.Set(j1, j2, acc)
			out.Set(j2, j1, acc)
		}
	}
	return out
}

// MaskedMatVec computes X_h · y where entries with NaN in y are skipped
// (paper's mvMulFilt). X_h is K×n and y has length n; NaN entries of y
// contribute zero.
func MaskedMatVec(xh *Matrix, y []float64) []float64 {
	if xh.Cols != len(y) {
		panic(fmt.Sprintf("linalg: MaskedMatVec length %d != %d cols",
			len(y), xh.Cols))
	}
	out := make([]float64, xh.Rows)
	for i := 0; i < xh.Rows; i++ {
		row := xh.Data[i*xh.Cols : (i+1)*xh.Cols]
		var acc float64
		for q, v := range y {
			if math.IsNaN(v) {
				continue
			}
			acc += row[q] * v
		}
		out[i] = acc
	}
	return out
}
