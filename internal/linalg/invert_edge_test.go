package linalg

import (
	"math"
	"testing"
)

// The tests in this file pin the failure paths of the two inversion
// routines against each other: zero pivots, exactly-singular inputs,
// non-finite input propagation, the K=1 scalar case and the non-square
// error paths. The batched tile inversion (GJBatch) inherits these
// semantics lane-wise, so they are the contract the tile kernels rely on.

func TestInvertGaussJordanZeroLeadingPivot(t *testing.T) {
	// Invertible, but with a zero in the (0,0) pivot position. The
	// paper's rotate-up scheme has no pivoting; the rotation can still
	// recover this matrix (row 0 rotates away and a non-zero pivot
	// arrives), so both routines must agree here, or GJ must flag it —
	// either way InvertPivot inverts it.
	a := NewMatrixFrom(2, 2, []float64{0, 1, 1, 0})
	pinv, err := InvertPivot(a)
	if err != nil {
		t.Fatalf("InvertPivot failed on permutation matrix: %v", err)
	}
	ginv, gerr := InvertGaussJordan(a)
	if gerr == nil && !ginv.Equal(pinv, 1e-12) {
		t.Fatalf("inverses disagree:\n%v\nvs\n%v", ginv, pinv)
	}
}

func TestInvertSingularAgreement(t *testing.T) {
	// Exactly-singular matrices must be flagged by both routines.
	cases := []*Matrix{
		NewMatrixFrom(2, 2, []float64{1, 2, 2, 4}),                 // rank 1
		NewMatrixFrom(3, 3, []float64{1, 2, 4, 2, 4, 8, 4, 8, 16}), // rank 1, exact in floats
		NewMatrix(3, 3), // zero
	}
	for i, a := range cases {
		if _, err := InvertGaussJordan(a); err != ErrSingular {
			t.Fatalf("case %d: InvertGaussJordan err = %v, want ErrSingular", i, err)
		}
		if _, err := InvertPivot(a); err != ErrSingular {
			t.Fatalf("case %d: InvertPivot err = %v, want ErrSingular", i, err)
		}
	}
}

func TestInvertNaNInfPropagation(t *testing.T) {
	// Non-finite inputs must never yield a "successful" non-finite
	// inverse: both routines must return ErrSingular rather than
	// poisoned output.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for pos := 0; pos < 4; pos++ {
			data := []float64{4, 1, 1, 3}
			data[pos] = bad
			a := NewMatrixFrom(2, 2, data)
			if _, err := InvertGaussJordan(a); err != ErrSingular {
				t.Fatalf("GaussJordan with %v at %d: err = %v, want ErrSingular", bad, pos, err)
			}
			if _, err := InvertPivot(a); err != ErrSingular {
				t.Fatalf("Pivot with %v at %d: err = %v, want ErrSingular", bad, pos, err)
			}
		}
	}
}

func TestInvertK1(t *testing.T) {
	// The K=1 path: inverse of [v] is [1/v]; [0] and non-finite are
	// singular.
	a := NewMatrixFrom(1, 1, []float64{4})
	for name, invert := range map[string]func(*Matrix) (*Matrix, error){
		"gauss-jordan": InvertGaussJordan,
		"pivot":        InvertPivot,
	} {
		inv, err := invert(a)
		if err != nil {
			t.Fatalf("%s: 1×1 invert failed: %v", name, err)
		}
		if got := inv.At(0, 0); got != 0.25 {
			t.Fatalf("%s: inverse of [4] = %v, want 0.25", name, got)
		}
		for _, v := range []float64{0, math.NaN(), math.Inf(1)} {
			if _, err := invert(NewMatrixFrom(1, 1, []float64{v})); err != ErrSingular {
				t.Fatalf("%s: 1×1 [%v] err = %v, want ErrSingular", name, v, err)
			}
		}
	}
}

func TestInvertNonSquareErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := InvertGaussJordan(a); err == nil || err == ErrSingular {
		t.Fatalf("InvertGaussJordan non-square err = %v, want shape error", err)
	}
	if _, err := InvertPivot(a); err == nil || err == ErrSingular {
		t.Fatalf("InvertPivot non-square err = %v, want shape error", err)
	}
}
