package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// interleave packs mats (each k×k) into the lane-interleaved batch
// layout with stride lanes.
func interleave(mats []*Matrix, k, lanes int) []float64 {
	out := make([]float64, k*k*lanes)
	for p, m := range mats {
		for e := 0; e < k*k; e++ {
			out[e*lanes+p] = m.Data[e]
		}
	}
	return out
}

// TestGJBatchLaneIdenticalToScalar pins every lane of the batched
// inversion to InvertGaussJordan bit for bit — values AND singularity
// flags — over random well-conditioned, singular, and zero matrices,
// for several K and lane counts including partial tiles (cnt < lanes).
func TestGJBatchLaneIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 3, 8} {
		for _, lanes := range []int{1, 3, 8} {
			for _, cnt := range []int{lanes, (lanes + 1) / 2} {
				mats := make([]*Matrix, cnt)
				for p := 0; p < cnt; p++ {
					m := NewMatrix(k, k)
					switch p % 3 {
					case 0: // diagonally dominant (the BFAST regime)
						for i := 0; i < k; i++ {
							for j := 0; j < k; j++ {
								m.Set(i, j, rng.NormFloat64())
							}
							m.Set(i, i, m.At(i, i)+float64(2*k))
						}
					case 1: // random, possibly ill-conditioned
						for e := range m.Data {
							m.Data[e] = rng.NormFloat64()
						}
					default: // exactly singular (zero)
					}
					mats[p] = m
				}
				a := interleave(mats, k, lanes)
				inv := make([]float64, k*k*lanes)
				sing := make([]bool, lanes)
				g := NewGJBatch(k, lanes)
				g.Invert(a, inv, sing, cnt)
				for p := 0; p < cnt; p++ {
					want, err := InvertGaussJordan(mats[p])
					if sing[p] != (err != nil) {
						t.Fatalf("k=%d lanes=%d cnt=%d lane %d: singular=%v, scalar err=%v",
							k, lanes, cnt, p, sing[p], err)
					}
					for e := 0; e < k*k; e++ {
						got := inv[e*lanes+p]
						w := want.Data[e]
						if got != w && !(math.IsNaN(got) && math.IsNaN(w)) {
							t.Fatalf("k=%d lanes=%d cnt=%d lane %d elem %d: %v != %v",
								k, lanes, cnt, p, e, got, w)
						}
					}
				}
			}
		}
	}
}

// TestGJBatchReuse: consecutive Invert calls on the same scratch must not
// leak state between batches.
func TestGJBatchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const k, lanes = 4, 8
	g := NewGJBatch(k, lanes)
	for round := 0; round < 3; round++ {
		mats := make([]*Matrix, lanes)
		for p := range mats {
			m := NewMatrix(k, k)
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					m.Set(i, j, rng.NormFloat64())
				}
				m.Set(i, i, m.At(i, i)+8)
			}
			mats[p] = m
		}
		a := interleave(mats, k, lanes)
		inv := make([]float64, k*k*lanes)
		sing := make([]bool, lanes)
		g.Invert(a, inv, sing, lanes)
		for p := 0; p < lanes; p++ {
			want, err := InvertGaussJordan(mats[p])
			if err != nil || sing[p] {
				t.Fatalf("round %d lane %d unexpectedly singular", round, p)
			}
			for e := 0; e < k*k; e++ {
				if inv[e*lanes+p] != want.Data[e] {
					t.Fatalf("round %d lane %d differs from scalar", round, p)
				}
			}
		}
	}
}

// TestMatVecBatchLaneIdenticalToScalar pins the interleaved batched
// matrix-vector product to MatVec per lane.
func TestMatVecBatchLaneIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{1, 3, 8} {
		const lanes = 5
		cnt := 4
		mats := make([]*Matrix, cnt)
		vecs := make([][]float64, cnt)
		for p := 0; p < cnt; p++ {
			mats[p] = NewMatrix(k, k)
			for e := range mats[p].Data {
				mats[p].Data[e] = rng.NormFloat64()
			}
			vecs[p] = make([]float64, k)
			for j := range vecs[p] {
				vecs[p][j] = rng.NormFloat64()
			}
		}
		a := interleave(mats, k, lanes)
		x := make([]float64, k*lanes)
		for p := 0; p < cnt; p++ {
			for j := 0; j < k; j++ {
				x[j*lanes+p] = vecs[p][j]
			}
		}
		out := make([]float64, k*lanes)
		MatVecBatch(k, lanes, cnt, a, x, out)
		for p := 0; p < cnt; p++ {
			want := MatVec(mats[p], vecs[p])
			for i := 0; i < k; i++ {
				if out[i*lanes+p] != want[i] {
					t.Fatalf("k=%d lane %d row %d: %v != %v", k, p, i, out[i*lanes+p], want[i])
				}
			}
		}
	}
}

// TestGJBatchPanicsOnBadSizes covers the guard paths.
func TestGJBatchPanicsOnBadSizes(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("zero lanes", func() { NewGJBatch(2, 0) })
	assertPanics("zero k", func() { NewGJBatch(0, 4) })
	g := NewGJBatch(2, 4)
	assertPanics("count too large", func() {
		g.Invert(make([]float64, 16), make([]float64, 16), make([]bool, 5), 5)
	})
	assertPanics("short buffers", func() {
		g.Invert(make([]float64, 3), make([]float64, 16), make([]bool, 4), 4)
	})
	assertPanics("matvec count", func() {
		MatVecBatch(2, 4, 5, make([]float64, 16), make([]float64, 8), make([]float64, 8))
	})
}
