package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// spdMatrix builds a random symmetric positive-definite k×k matrix as
// A·Aᵀ + k·I, mimicking the conditioning of BFAST normal matrices.
func spdMatrix(rng *rand.Rand, k int) *Matrix {
	a := randMatrix(rng, k, k)
	m := MatMul(a, a.Transpose())
	for i := 0; i < k; i++ {
		m.Set(i, i, m.At(i, i)+float64(k))
	}
	return m
}

func TestInvertGaussJordanIdentity(t *testing.T) {
	for k := 1; k <= 10; k++ {
		inv, err := InvertGaussJordan(identity(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !inv.Equal(identity(k), 1e-12) {
			t.Fatalf("k=%d: inverse of I != I:\n%v", k, inv)
		}
	}
}

func TestInvertGaussJordanKnown2x2(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{4, 7, 2, 6})
	inv, err := InvertGaussJordan(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewMatrixFrom(2, 2, []float64{0.6, -0.7, -0.2, 0.4})
	if !inv.Equal(want, 1e-12) {
		t.Fatalf("got\n%v want\n%v", inv, want)
	}
}

func TestInvertGaussJordanRoundTripProperty(t *testing.T) {
	// Property: inv(A)·A ≈ I for SPD matrices of BFAST-like sizes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(12)
		a := spdMatrix(rng, k)
		inv, err := InvertGaussJordan(a)
		if err != nil {
			return false
		}
		return MatMul(inv, a).Equal(identity(k), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInvertGaussJordanSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := InvertGaussJordan(a); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestInvertGaussJordanZeroMatrix(t *testing.T) {
	if _, err := InvertGaussJordan(NewMatrix(3, 3)); err == nil {
		t.Fatal("expected error inverting zero matrix")
	}
}

func TestInvertGaussJordanNonSquare(t *testing.T) {
	if _, err := InvertGaussJordan(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestInvertPivotMatchesGaussJordan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(10)
		a := spdMatrix(rng, k)
		gj, err1 := InvertGaussJordan(a)
		pv, err2 := InvertPivot(a)
		if err1 != nil || err2 != nil {
			return false
		}
		return gj.Equal(pv, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInvertPivotHandlesZeroLeadingPivot(t *testing.T) {
	// Needs a row swap; the pivot-free kernel may degrade here but the
	// library path must succeed.
	a := NewMatrixFrom(2, 2, []float64{0, 1, 1, 0})
	inv, err := InvertPivot(a)
	if err != nil {
		t.Fatal(err)
	}
	if !MatMul(inv, a).Equal(identity(2), 1e-12) {
		t.Fatalf("bad inverse:\n%v", inv)
	}
}

func TestInvertPivotSingular(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{1, 2, 3, 2, 4, 6, 1, 1, 1})
	if _, err := InvertPivot(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveSPDMatchesInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(10)
		a := spdMatrix(rng, k)
		b := make([]float64, k)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		ax := MatVec(a, x)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSPDRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := SolveSPD(a, []float64{1, 1}); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}

func TestSolveSPDShapeMismatch(t *testing.T) {
	if _, err := SolveSPD(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func BenchmarkInvertGaussJordanK8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := spdMatrix(rng, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := InvertGaussJordan(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskedCrossProductK8N256(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	xh := randMatrix(rng, 8, 256)
	mask := make([]float64, 256)
	for i := range mask {
		if rng.Float64() < 0.5 {
			mask[i] = math.NaN()
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaskedCrossProduct(xh, mask)
	}
}
