package linalg

import (
	"fmt"
	"math"
)

// GJBatch reduces up to Lanes adjoined K×2K Gauss-Jordan systems in one
// interleaved scratch buffer — the host analogue of the paper's
// shared-memory batched inversion (Fig. 5), where a thread block keeps
// one K×2K system per matrix resident in shared memory and all matrices
// step through the same pivot-free "rotate up" schedule in lockstep.
// Here the T systems of a pixel tile are interleaved element-wise
// (element (i, j) of lane p lives at sh[(i*w+j)*T+p]), so every
// elimination step is a short contiguous lane loop over identical
// arithmetic: one scratch buffer, one loop nest, T inversions.
//
// Lane p's floating-point sequence is exactly InvertGaussJordan's —
// including the zero-pivot behaviour (rows rotate unchanged) and the
// singularity test (non-finite entries or a left block that is not the
// identity within 1e-6) — so lane results are bit-identical to the
// scalar routine.
//
// The reduction runs in place: instead of double-buffering the K×2K
// systems (which streams 2·K·2K·T floats through the cache per step),
// the rotate-up schedule is virtual — after step q the current pivot row
// is physical row (q+1) mod K — and each step updates rows where they
// lie, with only the pivot row's column-q values copied aside. After K
// steps the rotation offset is 0 again, so extraction reads physical
// indices. This halves the elimination's memory traffic and drops the
// second K×2K×T scratch buffer.
type GJBatch struct {
	// K is the matrix order; Lanes is the interleaving stride T.
	K, Lanes int
	sh       []float64 // K × 2K × Lanes adjoined systems, reduced in place
	xr       []float64 // 2K × Lanes hoisted pivot-row quotients
	vq       []float64 // Lanes pivot values of the current step
	qs       []float64 // Lanes column-q values of the row being updated
	rowbuf   []float64 // 2K × Lanes saved row for the zero-pivot path
}

// NewGJBatch allocates scratch for inverting k×k matrices, lanes at a
// time.
func NewGJBatch(k, lanes int) *GJBatch {
	if k <= 0 || lanes <= 0 {
		panic(fmt.Sprintf("linalg: GJBatch %d×%d lanes %d", k, k, lanes))
	}
	w := 2 * k
	return &GJBatch{
		K: k, Lanes: lanes,
		sh: make([]float64, k*w*lanes),
		xr: make([]float64, w*lanes), vq: make([]float64, lanes),
		qs: make([]float64, lanes), rowbuf: make([]float64, w*lanes),
	}
}

// Invert inverts the first cnt lanes of the interleaved k×k batch a
// (element (i, j) of lane p at a[(i*k+j)*Lanes+p]), writing the inverses
// in the same layout into inv and setting singular[p] exactly when the
// scalar InvertGaussJordan would return ErrSingular for lane p. inv is
// written for singular lanes too (with whatever the reduction produced),
// mirroring the scalar routine's returned matrix; callers must test the
// flag.
//
//bfast:kernel
func (g *GJBatch) Invert(a, inv []float64, singular []bool, cnt int) {
	k, T := g.K, g.Lanes
	w := 2 * k
	if cnt < 0 || cnt > T {
		panic(fmt.Sprintf("linalg: GJBatch count %d for %d lanes", cnt, T))
	}
	if len(a) < k*k*T || len(inv) < k*k*T || len(singular) < cnt {
		panic("linalg: GJBatch buffers too small")
	}
	sh := g.sh
	// Adjoin the identity: sh = [A | I], lane-interleaved.
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			src := (i*k + j) * T
			dst := (i*w + j) * T
			for p := 0; p < cnt; p++ {
				sh[dst+p] = a[src+p]
			}
			var id float64
			if i == j {
				id = 1
			}
			dst = (i*w + k + j) * T
			for p := 0; p < cnt; p++ {
				sh[dst+p] = id
			}
		}
	}
	// The rotate-up schedule runs in place: at step q the current
	// (virtual) row 0 is physical row q, and the step writes new virtual
	// row i-1 over physical row (q+i) mod k — advancing the rotation
	// offset by one without moving any row. The arithmetic per lane is
	// exactly the double-buffered schedule's: same values, same order.
	for q := 0; q < k; q++ {
		// Pivot values of the pivot row and the hoisted quotients
		// x = pivotrow/vq. The scalar routine recomputes x per target
		// row; hoisting it is the same division, so lane arithmetic is
		// unchanged.
		vq := g.vq
		rowq := sh[q*w*T : (q*w+w)*T]
		anyZero := false
		for p := 0; p < cnt; p++ {
			vq[p] = rowq[q*T+p] // pivot row, column q
			// Exact-zero pivot sentinel, mirroring the scalar
			// InvertGaussJordan: NaN pivots are != 0, take the divide
			// path and poison the lane, which the left-block identity
			// check downstream rejects.
			//lint:allow nanguard -- exact-zero pivot sentinel; NaN lanes propagate to the singularity check
			if vq[p] == 0 {
				anyZero = true
			}
		}
		if !anyZero {
			// Fast path: no lane hit a zero pivot this step (the only way
			// a BFAST normal matrix ever does is by being singular), so
			// every inner loop is branch-free.
			for k2 := 0; k2 < w; k2++ {
				src := rowq[k2*T : k2*T+cnt]
				dst := g.xr[k2*T : k2*T+cnt]
				src = src[:len(dst)]
				for p := range dst {
					dst[p] = src[p] / vq[p]
				}
			}
			qs := g.qs[:cnt]
			for i := 1; i < k; i++ {
				phys := q + i
				if phys >= k {
					phys -= k
				}
				row := sh[phys*w*T : (phys*w+w)*T]
				// The k2 sweep overwrites the row's column q, so its
				// pre-update values are copied aside first.
				copy(qs, row[q*T:q*T+cnt])
				for k2 := 0; k2 < w; k2++ {
					dst := row[k2*T : k2*T+cnt]
					xrow := g.xr[k2*T : k2*T+cnt]
					xrow = xrow[:len(dst)]
					for p := range dst {
						dst[p] = dst[p] - qs[p]*xrow[p]
					}
				}
			}
			// New virtual last row = x, written over the old pivot row
			// (read only through xr and qs above).
			for k2 := 0; k2 < w; k2++ {
				copy(rowq[k2*T:k2*T+cnt], g.xr[k2*T:k2*T+cnt])
			}
			continue
		}
		// Slow path: a lane hit a zero pivot. Such a lane's matrix must
		// stay (virtually) unchanged while the global rotation offset
		// still advances, so its rows physically rotate down by one:
		// new physical row r = old physical row (r-1) mod k. Writing rows
		// in descending schedule order makes each copy's source still
		// untouched; the first-written row (q+k-1) is saved beforehand as
		// the final source for row q.
		for k2 := 0; k2 < w; k2++ {
			src := rowq[k2*T : k2*T+cnt]
			for p := 0; p < cnt; p++ {
				//lint:allow nanguard -- exact-zero pivot sentinel (slow path of the lane pivot test above)
				if vq[p] != 0 {
					g.xr[k2*T+p] = src[p] / vq[p]
				}
			}
		}
		lastPhys := q + k - 1
		if lastPhys >= k {
			lastPhys -= k
		}
		copy(g.rowbuf[:w*T], sh[lastPhys*w*T:(lastPhys*w+w)*T])
		qs := g.qs[:cnt]
		for i := k - 1; i >= 1; i-- {
			phys := q + i
			if phys >= k {
				phys -= k
			}
			prev := phys - 1
			if prev < 0 {
				prev += k
			}
			row := sh[phys*w*T : (phys*w+w)*T]
			prow := sh[prev*w*T : (prev*w+w)*T]
			copy(qs, row[q*T:q*T+cnt])
			for k2 := 0; k2 < w; k2++ {
				dst := row[k2*T : k2*T+cnt]
				xrow := g.xr[k2*T : k2*T+cnt]
				psrc := prow[k2*T : k2*T+cnt]
				xrow = xrow[:len(dst)]
				psrc = psrc[:len(dst)]
				for p := range dst {
					//lint:allow nanguard -- exact-zero pivot sentinel (lane-masked update)
					if vq[p] == 0 {
						dst[p] = psrc[p]
					} else {
						dst[p] = dst[p] - qs[p]*xrow[p]
					}
				}
			}
		}
		for k2 := 0; k2 < w; k2++ {
			dst := rowq[k2*T : k2*T+cnt]
			xrow := g.xr[k2*T : k2*T+cnt]
			bsrc := g.rowbuf[k2*T : k2*T+cnt]
			xrow = xrow[:len(dst)]
			bsrc = bsrc[:len(dst)]
			for p := range dst {
				//lint:allow nanguard -- exact-zero pivot sentinel (lane-masked update)
				if vq[p] == 0 {
					dst[p] = bsrc[p]
				} else {
					dst[p] = xrow[p]
				}
			}
		}
	}
	for p := 0; p < cnt; p++ {
		singular[p] = false
	}
	// Extract the right block and flag non-finite lanes.
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			src := (i*w + k + j) * T
			dst := (i*k + j) * T
			for p := 0; p < cnt; p++ {
				v := sh[src+p]
				inv[dst+p] = v
				if math.IsNaN(v) || math.IsInf(v, 0) {
					singular[p] = true
				}
			}
		}
	}
	// The pivot-free scheme signals singularity by leaving the left
	// block different from the identity (same 1e-6 tolerance as the
	// scalar routine).
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			src := (i*w + j) * T
			for p := 0; p < cnt; p++ {
				if singular[p] {
					continue
				}
				v := sh[src+p]
				if math.IsNaN(v) || math.Abs(v-want) > 1e-6 {
					singular[p] = true
				}
			}
		}
	}
}

// MatVecBatch computes out = A·x for cnt interleaved k×k matrices and
// k-vectors: out[i*lanes+p] = Σ_j a[(i*k+j)*lanes+p] · x[j*lanes+p],
// accumulating in increasing j (MatVec's order, so lane results are
// bit-identical to the scalar path).
//
//bfast:kernel
func MatVecBatch(k, lanes, cnt int, a, x, out []float64) {
	if cnt < 0 || cnt > lanes {
		panic(fmt.Sprintf("linalg: MatVecBatch count %d for %d lanes", cnt, lanes))
	}
	if len(a) < k*k*lanes || len(x) < k*lanes || len(out) < k*lanes {
		panic("linalg: MatVecBatch buffers too small")
	}
	for i := 0; i < k; i++ {
		dst := out[i*lanes : i*lanes+lanes]
		for p := 0; p < cnt; p++ {
			dst[p] = 0
		}
		for j := 0; j < k; j++ {
			row := a[(i*k+j)*lanes : (i*k+j)*lanes+lanes]
			xv := x[j*lanes : j*lanes+lanes]
			for p := 0; p < cnt; p++ {
				dst[p] += row[p] * xv[p]
			}
		}
	}
}
