package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// buildMaskWords mirrors series.FillMask locally (linalg must not import
// series): bit q set iff mask[q] is not NaN.
func buildMaskWords(mask []float64) []uint64 {
	words := make([]uint64, (len(mask)+63)/64)
	for q, v := range mask {
		if !math.IsNaN(v) {
			words[q/64] |= 1 << uint(q%64)
		}
	}
	return words
}

func randMaskedSeries(rng *rand.Rand, n int, nanFrac float64) []float64 {
	y := make([]float64, n)
	for i := range y {
		if rng.Float64() < nanFrac {
			y[i] = math.NaN()
		} else {
			y[i] = rng.NormFloat64()
		}
	}
	return y
}

// TestMaskedBitsKernelsBitIdentical: the bitset kernels must reproduce
// the element-wise masked kernels bit for bit across NaN densities,
// including the all-valid fast path and tail words (n % 64 != 0).
func TestMaskedBitsKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{5, 63, 64, 65, 128, 190, 256} {
		for _, frac := range []float64{0, 0.3, 0.5, 0.95, 1} {
			k := 8
			xh := NewMatrix(k, n)
			for i := range xh.Data {
				xh.Data[i] = rng.NormFloat64()
			}
			y := randMaskedSeries(rng, n, frac)
			words := buildMaskWords(y)

			want := MaskedCrossProduct(xh, y)
			got := make([]float64, k*k)
			MaskedCrossProductBits(xh, words, got)
			for i := range got {
				w := want.Data[i]
				if got[i] != w && !(math.IsNaN(got[i]) && math.IsNaN(w)) {
					t.Fatalf("n=%d frac=%g: cross product [%d] = %v, want %v (bit-identical)",
						n, frac, i, got[i], w)
				}
			}

			wantV := MaskedMatVec(xh, y)
			gotV := make([]float64, k)
			MaskedMatVecBits(xh, y, words, gotV)
			for i := range gotV {
				if gotV[i] != wantV[i] && !(math.IsNaN(gotV[i]) && math.IsNaN(wantV[i])) {
					t.Fatalf("n=%d frac=%g: matvec [%d] = %v, want %v (bit-identical)",
						n, frac, i, gotV[i], wantV[i])
				}
			}
		}
	}
}

func TestMaskedBitsPanicsOnShapeMismatch(t *testing.T) {
	xh := NewMatrix(2, 10)
	words := make([]uint64, 1)
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("cross/out", func() { MaskedCrossProductBits(xh, words, make([]float64, 3)) })
	assertPanics("cross/words", func() { MaskedCrossProductBits(NewMatrix(2, 80), words, make([]float64, 4)) })
	assertPanics("matvec/y", func() { MaskedMatVecBits(xh, make([]float64, 9), words, make([]float64, 2)) })
	assertPanics("matvec/out", func() { MaskedMatVecBits(xh, make([]float64, 10), words, make([]float64, 3)) })
}
