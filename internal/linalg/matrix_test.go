package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func identity(k int) *Matrix {
	m := NewMatrix(k, k)
	for i := 0; i < k; i++ {
		m.Set(i, i, 1)
	}
	return m
}

func TestNewMatrixFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewMatrixFrom(2, 3, make([]float64, 5))
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 4, 7)
	got := MatMul(a, identity(7))
	if !got.Equal(a, 0) {
		t.Fatalf("A·I != A:\n%v\nvs\n%v", got, a)
	}
	got = MatMul(identity(4), a)
	if !got.Equal(a, 0) {
		t.Fatalf("I·A != A")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := NewMatrixFrom(2, 2, []float64{58, 64, 139, 154})
	if got := MatMul(a, b); !got.Equal(want, 0) {
		t.Fatalf("MatMul wrong:\n%v", got)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatVecMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 5, 9)
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := MatVec(a, x)
	want := MatMul(a, NewMatrixFrom(9, 1, x))
	for i, v := range got {
		if math.Abs(v-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MatVec[%d]=%v want %v", i, v, want.At(i, 0))
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := randMatrix(rng, r, c)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeMulIdentityProperty(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := randMatrix(rng, r, k)
		b := randMatrix(rng, k, c)
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return lhs.Equal(rhs, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedCrossProductNoMaskEqualsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xh := randMatrix(rng, 4, 20)
	mask := make([]float64, 20) // no NaNs
	got := MaskedCrossProduct(xh, mask)
	want := MatMul(xh, xh.Transpose())
	if !got.Equal(want, 1e-10) {
		t.Fatalf("unmasked cross product differs:\n%v\nvs\n%v", got, want)
	}
}

func TestMaskedCrossProductEqualsFilteredDense(t *testing.T) {
	// Property: the masked cross product equals the dense cross product of
	// the column-filtered matrix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		n := 1 + rng.Intn(40)
		xh := randMatrix(rng, k, n)
		mask := make([]float64, n)
		var keep []int
		for q := range mask {
			if rng.Float64() < 0.5 {
				mask[q] = math.NaN()
			} else {
				mask[q] = rng.NormFloat64()
				keep = append(keep, q)
			}
		}
		filtered := NewMatrix(k, len(keep))
		for i := 0; i < k; i++ {
			for j, q := range keep {
				filtered.Set(i, j, xh.At(i, q))
			}
		}
		got := MaskedCrossProduct(xh, mask)
		want := MatMul(filtered, filtered.Transpose())
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedCrossProductSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xh := randMatrix(rng, 6, 30)
	mask := make([]float64, 30)
	for q := range mask {
		if rng.Float64() < 0.7 {
			mask[q] = math.NaN()
		}
	}
	m := MaskedCrossProduct(xh, mask)
	if !m.Equal(m.Transpose(), 0) {
		t.Fatal("masked cross product must be exactly symmetric")
	}
}

func TestMaskedCrossProductAllNaN(t *testing.T) {
	xh := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mask := []float64{math.NaN(), math.NaN(), math.NaN()}
	m := MaskedCrossProduct(xh, mask)
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("all-NaN mask should yield zero matrix, got %v", m)
		}
	}
}

func TestMaskedMatVecSkipsNaN(t *testing.T) {
	xh := NewMatrixFrom(2, 4, []float64{1, 1, 1, 1, 2, 2, 2, 2})
	y := []float64{1, math.NaN(), 3, math.NaN()}
	got := MaskedMatVec(xh, y)
	if got[0] != 4 || got[1] != 8 {
		t.Fatalf("MaskedMatVec = %v, want [4 8]", got)
	}
}

func TestMaskedMatVecMatchesFiltered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		n := 1 + rng.Intn(40)
		xh := randMatrix(rng, k, n)
		y := make([]float64, n)
		var keep []int
		for q := range y {
			if rng.Float64() < 0.5 {
				y[q] = math.NaN()
			} else {
				y[q] = rng.NormFloat64()
				keep = append(keep, q)
			}
		}
		got := MaskedMatVec(xh, y)
		want := make([]float64, k)
		for i := 0; i < k; i++ {
			for _, q := range keep {
				want[i] += xh.At(i, q) * y[q]
			}
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualNaNAware(t *testing.T) {
	a := NewMatrixFrom(1, 2, []float64{math.NaN(), 1})
	b := NewMatrixFrom(1, 2, []float64{math.NaN(), 1})
	if !a.Equal(b, 0) {
		t.Fatal("NaN positions should compare equal")
	}
	c := NewMatrixFrom(1, 2, []float64{0, 1})
	if a.Equal(c, 0) {
		t.Fatal("NaN vs number should differ")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewMatrixFrom(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}
