// Package gpusim models the execution of the paper's GPU kernels on a
// CUDA-like device. Go has no practical GPU backend, so — per the
// reproduction plan in DESIGN.md — the kernels in internal/kernels are
// executed *functionally* on the host (bit-compatible float32 arithmetic,
// validated against the scalar reference) while this package accounts for
// the memory traffic and arithmetic they would generate on the device and
// converts those counts into modeled runtimes with a calibrated cost model.
//
// The paper's performance figures compare optimization variants of the
// same kernel, and §III-C derives the speed-ups directly from ratios of
// global-memory accesses (register tiling performs R× fewer accesses;
// shared-memory inversion performs 3K× fewer). The simulator reproduces
// exactly those ratios from instrumented execution, which preserves the
// figures' shape: who wins, and by roughly what factor.
package gpusim

import (
	"fmt"
	"time"
)

// Profile holds the cost-model parameters of a simulated device.
type Profile struct {
	// Name labels the device in reports.
	Name string
	// PeakGFlops is the peak single-precision throughput (FMA counted as
	// two flops), in Gflop/s.
	PeakGFlops float64
	// GlobalBWGBs is the peak global-memory bandwidth in GB/s; fully
	// coalesced accesses are charged against it directly.
	GlobalBWGBs float64
	// CachedFactor is the effective bandwidth multiplier for re-read
	// global data that hits L1/texture cache (broadcasts, short strides).
	CachedFactor float64
	// SharedBWGBs is the aggregate shared-memory (scratchpad) bandwidth
	// in GB/s across all SMs.
	SharedBWGBs float64
	// ResidentBlocks is the number of thread blocks the device can keep
	// in flight; sequential barrier-separated steps of more blocks than
	// this serialize in waves.
	ResidentBlocks int
	// BarrierStepNS is the modeled latency of one barrier-separated step
	// of a thread block, in nanoseconds.
	BarrierStepNS float64
	// LaunchOverheadUS is the per-kernel launch overhead in microseconds.
	LaunchOverheadUS float64
	// BWEfficiency is the achieved fraction of peak memory bandwidth
	// (DRAM and shared); real kernels rarely sustain more than 50–70%.
	BWEfficiency float64
	// WarpSize is the SIMT width; divergent per-pixel loops in fused
	// kernels pad to the warp maximum (footnote 4 of the paper).
	WarpSize int
}

// RTX2080Ti approximates the evaluation GPU of §IV-A: 4352 cores at
// 1.545 GHz (13.4 TFlop/s FMA), 616 GB/s DRAM, 68 SMs.
func RTX2080Ti() Profile {
	return Profile{
		Name:             "RTX 2080 Ti",
		PeakGFlops:       13450,
		GlobalBWGBs:      616,
		CachedFactor:     4,
		SharedBWGBs:      13400,
		ResidentBlocks:   544, // 68 SMs × 8 resident blocks
		BarrierStepNS:    250,
		LaunchOverheadUS: 5,
		BWEfficiency:     0.55,
		WarpSize:         32,
	}
}

// TitanZ approximates the GTX TITAN Z (one of its two GK110 dies) used for
// the large-scale runs of §V-A: 2880 shader units at ~0.88 GHz, 336 GB/s.
func TitanZ() Profile {
	return Profile{
		Name:             "GTX TITAN Z",
		PeakGFlops:       5046,
		GlobalBWGBs:      336,
		CachedFactor:     4,
		SharedBWGBs:      5500,
		ResidentBlocks:   240, // 15 SMX × 16 resident blocks
		BarrierStepNS:    350,
		LaunchOverheadUS: 8,
		BWEfficiency:     0.55,
		WarpSize:         32,
	}
}

// Counters accumulates the work a kernel generates, in element/flop units.
// All memory counts are in 4-byte (float32) elements.
type Counters struct {
	// GlobalCoalesced counts fully-coalesced global-memory element
	// accesses (unit-stride warp accesses, collective copies).
	GlobalCoalesced uint64
	// GlobalCached counts global accesses that re-read recently-used or
	// broadcast data and are served mostly from L1/texture cache.
	GlobalCached uint64
	// Shared counts shared-memory (scratchpad) element accesses.
	Shared uint64
	// Flops counts floating-point operations (mul+add of an FMA = 2).
	Flops uint64
	// Blocks counts launched thread blocks.
	Blocks uint64
	// BarrierSteps counts barrier-separated sequential steps summed over
	// all blocks (each step costs BarrierStepNS once blocks exceed the
	// resident capacity they serialize in waves).
	BarrierSteps uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.GlobalCoalesced += o.GlobalCoalesced
	c.GlobalCached += o.GlobalCached
	c.Shared += o.Shared
	c.Flops += o.Flops
	c.Blocks += o.Blocks
	c.BarrierSteps += o.BarrierSteps
}

// Scale multiplies every counter by f (used to extrapolate a sampled
// sub-batch execution to the full pixel count).
func (c *Counters) Scale(f float64) {
	c.GlobalCoalesced = uint64(float64(c.GlobalCoalesced) * f)
	c.GlobalCached = uint64(float64(c.GlobalCached) * f)
	c.Shared = uint64(float64(c.Shared) * f)
	c.Flops = uint64(float64(c.Flops) * f)
	c.Blocks = uint64(float64(c.Blocks) * f)
	c.BarrierSteps = uint64(float64(c.BarrierSteps) * f)
}

// GlobalBytes returns the total DRAM traffic in bytes (coalesced plus
// cache-filtered re-reads).
func (c Counters) GlobalBytes() float64 {
	return 4 * float64(c.GlobalCoalesced+c.GlobalCached)
}

// Breakdown is the per-resource time decomposition of a kernel execution.
type Breakdown struct {
	MemGlobal time.Duration
	MemShared time.Duration
	Compute   time.Duration
	Latency   time.Duration
	Launch    time.Duration
}

// KernelTime converts counters into a modeled kernel runtime under the
// roofline assumption: the kernel is bound by the slowest of its DRAM
// traffic, shared-memory traffic, arithmetic, and barrier-latency chains,
// plus the fixed launch overhead.
func (p Profile) KernelTime(c Counters) (time.Duration, Breakdown) {
	eff := p.BWEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	secGlobal := 4 * float64(c.GlobalCoalesced) / (p.GlobalBWGBs * eff * 1e9)
	secGlobal += 4 * float64(c.GlobalCached) / (p.GlobalBWGBs * p.CachedFactor * eff * 1e9)
	secShared := 4 * float64(c.Shared) / (p.SharedBWGBs * eff * 1e9)
	secFlops := float64(c.Flops) / (p.PeakGFlops * 1e9)
	waves := 1.0
	if c.Blocks > uint64(p.ResidentBlocks) && c.Blocks > 0 {
		waves = float64(c.BarrierSteps) / float64(c.Blocks) * // steps per block
			(float64(c.Blocks) / float64(p.ResidentBlocks)) // serialized waves
	} else {
		waves = float64(c.BarrierSteps) / maxf(1, float64(c.Blocks))
	}
	secLatency := waves * p.BarrierStepNS * 1e-9
	b := Breakdown{
		MemGlobal: time.Duration(secGlobal * 1e9),
		MemShared: time.Duration(secShared * 1e9),
		Compute:   time.Duration(secFlops * 1e9),
		Latency:   time.Duration(secLatency * 1e9),
		Launch:    time.Duration(p.LaunchOverheadUS * 1e3),
	}
	max := b.MemGlobal
	if b.MemShared > max {
		max = b.MemShared
	}
	if b.Compute > max {
		max = b.Compute
	}
	if b.Latency > max {
		max = b.Latency
	}
	return max + b.Launch, b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// KernelRun is the record of one simulated kernel execution.
type KernelRun struct {
	// Name identifies the kernel and variant ("mmMulFilt/register-tiled").
	Name string
	// Counters is the accumulated work (already scaled to the full batch
	// if the execution was sampled).
	Counters Counters
	// Time is the modeled runtime on the device.
	Time time.Duration
	// Breakdown decomposes Time by bounding resource.
	Breakdown Breakdown
	// Eff is the per-run bandwidth-efficiency multiplier the run was
	// recorded with (1 for cooperating-block kernels; <1 for fused
	// sequential kernels). Needed to re-model the run at another scale.
	Eff float64
}

// Rescale re-models the run with its counters multiplied by f — the
// correct way to extrapolate a sampled execution to a larger batch
// (scaling the *time* would wrongly multiply the fixed launch overhead).
func (p Profile) Rescale(r KernelRun, f float64) KernelRun {
	c := r.Counters
	c.Scale(f)
	eff := r.Eff
	if eff > 0 && eff < 1 {
		if p.BWEfficiency <= 0 || p.BWEfficiency > 1 {
			p.BWEfficiency = 1
		}
		p.BWEfficiency *= eff
	}
	t, b := p.KernelTime(c)
	return KernelRun{Name: r.Name, Counters: c, Time: t, Breakdown: b, Eff: r.Eff}
}

// GFlopsSp returns the specification-GFlop/s metric of §IV-A: specFlops is
// the worst-case flop count computed algebraically from the high-level
// specification (see internal/flops), divided by the modeled runtime.
func (r KernelRun) GFlopsSp(specFlops float64) float64 {
	s := r.Time.Seconds()
	if s <= 0 {
		return 0
	}
	return specFlops / s / 1e9
}

// Device carries a profile and accumulates kernel runs.
type Device struct {
	Profile Profile
	Runs    []KernelRun
}

// NewDevice returns a device with the given profile.
func NewDevice(p Profile) *Device { return &Device{Profile: p} }

// Record models the runtime for counters and appends a run.
func (d *Device) Record(name string, c Counters) KernelRun {
	return d.RecordEff(name, c, 1)
}

// RecordEff models the runtime with the device's bandwidth efficiency
// additionally scaled by eff — used for fused one-thread-per-pixel kernels
// whose sequential access streams expose less memory-level parallelism
// than cooperating blocks and therefore sustain a lower fraction of peak
// bandwidth.
func (d *Device) RecordEff(name string, c Counters, eff float64) KernelRun {
	p := d.Profile
	if eff > 0 && eff < 1 {
		if p.BWEfficiency <= 0 || p.BWEfficiency > 1 {
			p.BWEfficiency = 1
		}
		p.BWEfficiency *= eff
	}
	t, b := p.KernelTime(c)
	run := KernelRun{Name: name, Counters: c, Time: t, Breakdown: b, Eff: eff}
	d.Runs = append(d.Runs, run)
	return run
}

// TotalTime sums the modeled time of all recorded runs.
func (d *Device) TotalTime() time.Duration {
	var t time.Duration
	for _, r := range d.Runs {
		t += r.Time
	}
	return t
}

// String renders the device run log.
func (d *Device) String() string {
	s := fmt.Sprintf("%s:\n", d.Profile.Name)
	for _, r := range d.Runs {
		s += fmt.Sprintf("  %-32s %12v  %8.1f MB DRAM  %10d flops\n",
			r.Name, r.Time, r.Counters.GlobalBytes()/1e6, r.Counters.Flops)
	}
	return s
}
