package gpusim

import (
	"strings"
	"testing"
	"time"
)

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{RTX2080Ti(), TitanZ()} {
		if p.PeakGFlops <= 0 || p.GlobalBWGBs <= 0 || p.SharedBWGBs <= 0 {
			t.Fatalf("%s: non-positive rates", p.Name)
		}
		if p.SharedBWGBs <= p.GlobalBWGBs {
			t.Fatalf("%s: shared memory must be faster than global", p.Name)
		}
		if p.BWEfficiency <= 0 || p.BWEfficiency > 1 {
			t.Fatalf("%s: BWEfficiency out of range", p.Name)
		}
		if p.WarpSize != 32 {
			t.Fatalf("%s: warp size %d", p.Name, p.WarpSize)
		}
	}
}

func TestKernelTimeMemoryBound(t *testing.T) {
	p := RTX2080Ti()
	// 1 GB of coalesced traffic, negligible flops.
	c := Counters{GlobalCoalesced: 1 << 28, Blocks: 1}
	dt, b := p.KernelTime(c)
	wantSec := float64(4*(1<<28)) / (p.GlobalBWGBs * p.BWEfficiency * 1e9)
	if got := b.MemGlobal.Seconds(); got < wantSec*0.99 || got > wantSec*1.01 {
		t.Fatalf("MemGlobal %v, want %v s", got, wantSec)
	}
	if dt < b.MemGlobal {
		t.Fatal("total must be at least the bounding resource")
	}
}

func TestKernelTimeComputeBound(t *testing.T) {
	p := RTX2080Ti()
	c := Counters{Flops: 1 << 40, Blocks: 1}
	_, b := p.KernelTime(c)
	if b.Compute <= b.MemGlobal {
		t.Fatal("pure-flop kernel must be compute bound")
	}
}

func TestKernelTimeCachedCheaperThanCoalesced(t *testing.T) {
	p := RTX2080Ti()
	_, bc := p.KernelTime(Counters{GlobalCoalesced: 1 << 26, Blocks: 1})
	_, bh := p.KernelTime(Counters{GlobalCached: 1 << 26, Blocks: 1})
	if bh.MemGlobal >= bc.MemGlobal {
		t.Fatal("cached accesses must be cheaper than DRAM-coalesced ones")
	}
}

func TestKernelTimeSharedCheaperThanGlobal(t *testing.T) {
	p := RTX2080Ti()
	_, bg := p.KernelTime(Counters{GlobalCoalesced: 1 << 26, Blocks: 1})
	_, bs := p.KernelTime(Counters{Shared: 1 << 26, Blocks: 1})
	if bs.MemShared >= bg.MemGlobal {
		t.Fatal("shared accesses must be cheaper than global ones")
	}
}

func TestKernelTimeLaunchOverheadFloor(t *testing.T) {
	p := RTX2080Ti()
	dt, _ := p.KernelTime(Counters{})
	want := time.Duration(p.LaunchOverheadUS * 1e3)
	if dt < want {
		t.Fatalf("empty kernel %v must still pay launch overhead %v", dt, want)
	}
}

func TestKernelTimeBarrierWaves(t *testing.T) {
	p := RTX2080Ti()
	// Fewer blocks than resident capacity: latency = steps-per-block.
	few := Counters{Blocks: 10, BarrierSteps: 100}
	_, bf := p.KernelTime(few)
	wantFew := 10 * p.BarrierStepNS * 1e-9 // 100 steps / 10 blocks
	if got := bf.Latency.Seconds(); got < wantFew*0.99 || got > wantFew*1.01 {
		t.Fatalf("few-block latency %v, want %v", got, wantFew)
	}
	// More blocks than resident capacity: waves serialize.
	many := Counters{Blocks: uint64(p.ResidentBlocks * 4), BarrierSteps: uint64(p.ResidentBlocks * 4 * 10)}
	_, bm := p.KernelTime(many)
	wantMany := 10.0 * 4 * p.BarrierStepNS * 1e-9
	if got := bm.Latency.Seconds(); got < wantMany*0.99 || got > wantMany*1.01 {
		t.Fatalf("many-block latency %v, want %v", got, wantMany)
	}
}

func TestCountersAddScale(t *testing.T) {
	a := Counters{GlobalCoalesced: 1, GlobalCached: 2, Shared: 3, Flops: 4, Blocks: 5, BarrierSteps: 6}
	b := a
	a.Add(b)
	if a.GlobalCoalesced != 2 || a.BarrierSteps != 12 {
		t.Fatalf("Add wrong: %+v", a)
	}
	a.Scale(0.5)
	if a.GlobalCoalesced != 1 || a.Flops != 4 {
		t.Fatalf("Scale wrong: %+v", a)
	}
}

func TestGlobalBytes(t *testing.T) {
	c := Counters{GlobalCoalesced: 10, GlobalCached: 5}
	if c.GlobalBytes() != 60 {
		t.Fatalf("GlobalBytes = %v, want 60", c.GlobalBytes())
	}
}

func TestDeviceRecordAccumulates(t *testing.T) {
	d := NewDevice(RTX2080Ti())
	d.Record("a", Counters{GlobalCoalesced: 1 << 20, Blocks: 1})
	d.Record("b", Counters{GlobalCoalesced: 1 << 20, Blocks: 1})
	if len(d.Runs) != 2 {
		t.Fatalf("expected 2 runs, got %d", len(d.Runs))
	}
	if d.TotalTime() <= d.Runs[0].Time {
		t.Fatal("TotalTime must sum runs")
	}
	if !strings.Contains(d.String(), "a") {
		t.Fatal("String must list run names")
	}
}

func TestRecordEffSlowsMemory(t *testing.T) {
	d := NewDevice(RTX2080Ti())
	c := Counters{GlobalCoalesced: 1 << 26, Blocks: 1}
	fast := d.Record("fast", c)
	slow := d.RecordEff("slow", c, 0.5)
	if slow.Time <= fast.Time {
		t.Fatalf("eff=0.5 run (%v) must be slower than eff=1 (%v)", slow.Time, fast.Time)
	}
}

func TestGFlopsSp(t *testing.T) {
	r := KernelRun{Time: time.Second}
	if got := r.GFlopsSp(2e9); got != 2 {
		t.Fatalf("GFlopsSp = %v, want 2", got)
	}
	r.Time = 0
	if got := r.GFlopsSp(2e9); got != 0 {
		t.Fatal("zero-time run must return 0")
	}
}

func TestRescaleScalesCountersNotOverhead(t *testing.T) {
	p := RTX2080Ti()
	d := NewDevice(p)
	// A memory-bound run: rescaling by 8 must scale the memory time by 8
	// but keep the launch overhead fixed.
	run := d.Record("r", Counters{GlobalCoalesced: 1 << 24, Blocks: 64})
	scaled := p.Rescale(run, 8)
	wantMem := 8 * run.Breakdown.MemGlobal.Seconds()
	if got := scaled.Breakdown.MemGlobal.Seconds(); got < wantMem*0.99 || got > wantMem*1.01 {
		t.Fatalf("rescaled memory %v, want %v", got, wantMem)
	}
	if scaled.Breakdown.Launch != run.Breakdown.Launch {
		t.Fatal("launch overhead must not scale")
	}
	if scaled.Counters.GlobalCoalesced != 8*run.Counters.GlobalCoalesced {
		t.Fatal("counters must scale")
	}
}

func TestRescalePreservesEff(t *testing.T) {
	p := RTX2080Ti()
	d := NewDevice(p)
	c := Counters{GlobalCoalesced: 1 << 24, Blocks: 8}
	slow := d.RecordEff("s", c, 0.5)
	fast := d.Record("f", c)
	sSlow := p.Rescale(slow, 4)
	sFast := p.Rescale(fast, 4)
	if sSlow.Time <= sFast.Time {
		t.Fatal("rescale must preserve the per-run efficiency penalty")
	}
	if sSlow.Eff != 0.5 {
		t.Fatalf("eff lost: %v", sSlow.Eff)
	}
}
