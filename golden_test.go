package bfast

import (
	"context"

	"math"
	"testing"
)

// TestGoldenDetection pins the exact outputs of the full pipeline
// (generator → design matrix → masked fit → MOSUM → remap) on a fixed
// seed. Any future change that alters detection semantics — even a
// floating-point reordering — trips this test and must be reviewed
// deliberately (the repository's bit-identity guarantees between the
// implementations depend on the operation order staying put).
func TestGoldenDetection(t *testing.T) {
	spec := SceneSpec{Name: "golden", M: 16, N: 256, History: 128,
		NaNFrac: 0.5, BreakFrac: 0.5, BreakShift: -0.5, Seed: 20200420}
	scene, err := GenerateScene(spec)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(256, DefaultOptions(128))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		pixel        int
		status       string
		breakIndex   int
		validHistory int
		valid        int
		mean         float64
	}{
		{0, "ok", -1, 70, 134, -1.325716789719},
		{1, "ok", 39, 61, 124, -12.185646218069},
		{2, "ok", -1, 63, 128, 0.109187702086},
		{3, "ok", -1, 60, 119, -1.645437301700},
		{4, "ok", -1, 63, 125, 0.063514197873},
		{5, "ok", -1, 62, 122, -0.721149739378},
		{6, "ok", 23, 65, 137, -2.197493238439},
		{7, "ok", -1, 60, 120, -0.102461913379},
		{8, "ok", 122, 74, 129, 1.815316709877},
		{9, "ok", -1, 56, 127, 0.699484233473},
		{10, "ok", -1, 60, 126, 0.349803961212},
		{11, "ok", -1, 57, 114, 1.607881763057},
		{12, "ok", 53, 61, 127, -11.461331327397},
		{13, "ok", -1, 62, 132, 0.342252653174},
		{14, "ok", -1, 67, 125, 0.074297163821},
		{15, "ok", 81, 59, 129, -4.473398765980},
	}
	for _, w := range want {
		r, err := det.Detect(context.Background(), scene.Y[w.pixel*256:(w.pixel+1)*256])
		if err != nil {
			t.Fatal(err)
		}
		if r.Status.String() != w.status || r.BreakIndex != w.breakIndex ||
			r.ValidHistory != w.validHistory || r.Valid != w.valid {
			t.Errorf("pixel %d: got (%v, %d, %d, %d), want (%s, %d, %d, %d)",
				w.pixel, r.Status, r.BreakIndex, r.ValidHistory, r.Valid,
				w.status, w.breakIndex, w.validHistory, w.valid)
		}
		if math.Abs(r.MosumMean-w.mean) > 5e-13 {
			t.Errorf("pixel %d: mean %.12f, want %.12f", w.pixel, r.MosumMean, w.mean)
		}
	}
}
