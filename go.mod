module bfast

go 1.22
