package bfast

import (
	"context"

	"math"
	"testing"
	"time"
)

func TestPublicIndices(t *testing.T) {
	if got := NDMI(0.3, 0.1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("NDMI = %v", got)
	}
	if got := NDVI(0.5, 0.1); got <= 0 {
		t.Fatalf("NDVI = %v", got)
	}
}

func TestPublicBandSceneToDetection(t *testing.T) {
	scene, err := GenerateBandScene(BandSceneSpec{
		Width: 16, Height: 16, Dates: 160, History: 80,
		CloudFrac: 0.4, BreakFrac: 0.4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ndmi, err := CubeNDMI(scene.NIR, scene.SWIR)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ProcessCube(context.Background(), ndmi, DefaultOptions(80), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	total, neg := m.CountBreaks()
	if total == 0 || neg == 0 {
		t.Fatalf("band pipeline found no breaks (total=%d neg=%d)", total, neg)
	}
}

func TestNewDetectorForAxis(t *testing.T) {
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	times, err := Landsat16Day(start, 330)
	if err != nil {
		t.Fatal(err)
	}
	axis, err := NewTimeAxis(times)
	if err != nil {
		t.Fatal(err)
	}
	monitor := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	det, err := NewDetectorForAxis(axis, monitor, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if det.SeriesLen() != 330 {
		t.Fatalf("series length %d", det.SeriesLen())
	}
	if det.Options().Frequency != 1 {
		t.Fatal("axis detector must use annual frequency")
	}

	// A break after 2012 must be found and dated correctly.
	y := make([]float64, axis.Len())
	for i, ts := range axis.Times {
		yr := DecimalYear(ts)
		y[i] = 0.5 + 0.3*math.Sin(2*math.Pi*yr) + 0.001*math.Sin(float64(i))
		if yr >= 2012 {
			y[i] -= 0.5
		}
	}
	res, err := det.Detect(context.Background(), y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasBreak() {
		t.Fatalf("missed the 2012 break: %+v", res)
	}
	when := DecimalYear(axis.Times[det.Options().History+res.BreakIndex])
	if when < 2012 || when > 2013 {
		t.Fatalf("break dated %v, want 2012.x", when)
	}

	// Monitoring start outside the calendar must fail.
	if _, err := NewDetectorForAxis(axis, start.AddDate(-1, 0, 0), DefaultOptions(1)); err == nil {
		t.Fatal("expected error for monitoring before the calendar")
	}
}

func TestPublicCUSUMOption(t *testing.T) {
	opt := DefaultOptions(100)
	opt.Process = ProcessCUSUM
	det, err := NewDetector(200, opt)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 200)
	for i := range y {
		y[i] = 0.5 + 0.3*math.Sin(2*math.Pi*float64(i+1)/23) + 0.001*math.Sin(float64(7*i))
		if i >= 150 {
			y[i] -= 0.6
		}
	}
	res, err := det.Detect(context.Background(), y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasBreak() {
		t.Fatalf("CUSUM missed a strong break: %+v", res)
	}
}

func TestPublicDetectStable(t *testing.T) {
	opt := DefaultOptions(150)
	det, err := NewDetector(250, opt)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 250)
	for i := range y {
		y[i] = 0.5 + 0.3*math.Sin(2*math.Pi*float64(i+1)/23) + 0.002*math.Sin(float64(13*i))
		if i < 50 {
			y[i] += 1.0 // unstable early regime
		}
	}
	res, start, err := det.DetectStable(y)
	if err != nil {
		t.Fatal(err)
	}
	if start == 0 {
		t.Fatal("ROC should have trimmed the early regime")
	}
	if res.HasBreak() {
		t.Fatalf("no monitoring break was injected, got %+v (start=%d)", res, start)
	}
	if _, err := det.SelectStableHistory(make([]float64, 10), 0.05); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestPublicPipelineAndCluster(t *testing.T) {
	spec := SceneSpec{M: 16 * 16, N: 96, History: 48, NaNFrac: 0.3, Width: 16, Seed: 13}
	scene, err := GenerateScene(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CubeFromFlat(16, 16, 96, scene.Y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPipeline(context.Background(), c, PipelineConfig{Options: DefaultOptions(48), Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.Kernel <= 0 {
		t.Fatal("no modeled kernel time")
	}
	cl, err := ScheduleImages([]time.Duration{time.Second, 2 * time.Second, time.Second}, ClusterConfig{Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Makespan != 2*time.Second {
		t.Fatalf("makespan %v", cl.Makespan)
	}
}

func TestPublicStreamChunks(t *testing.T) {
	c, _ := NewCube(4, 4, 8)
	c.Set(1, 1, 3, 0.5)
	path := t.TempDir() + "/c.bfc"
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	pixels := 0
	found := false
	err := StreamCubeChunks(path, 3, func(h CubeHeader, ch CubeChunk) error {
		pixels += ch.Pixels
		// Pixel (1,1) is index 5; date 3.
		lo, hi := ch.Start, ch.Start+ch.Pixels
		if lo <= 5 && 5 < hi {
			if v := ch.Values[(5-ch.Start)*ch.Dates+3]; math.Abs(v-0.5) < 1e-6 {
				found = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pixels != 16 || !found {
		t.Fatalf("streamed %d pixels, found=%v", pixels, found)
	}
}
