#!/bin/sh
# Boots bfast-serve twice — once plain, once with -coalesce — fires the
# same concurrent small /v1/batch requests at both, and asserts every
# coalesced response is byte-identical to the per-request one. Also
# checks that the coalesce.* metric families move and that the merged
# server drains cleanly on SIGTERM. Used by `make coalesce-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR_DIRECT=${ADDR_DIRECT:-127.0.0.1:18090}
ADDR_COAL=${ADDR_COAL:-127.0.0.1:18091}
REQUESTS=${REQUESTS:-24}
TMP=$(mktemp -d)
trap 'kill "$PID_DIRECT" "$PID_COAL" 2>/dev/null || true; rm -rf "$TMP"' EXIT

$GO build -o "$TMP/bfast-serve" ./cmd/bfast-serve
# -max-concurrent must cover the whole burst: the point is merging
# concurrent requests, not 429ing them.
"$TMP/bfast-serve" -addr "$ADDR_DIRECT" -max-concurrent $((2 * REQUESTS)) >"$TMP/direct.log" 2>&1 &
PID_DIRECT=$!
"$TMP/bfast-serve" -addr "$ADDR_COAL" -max-concurrent $((2 * REQUESTS)) -coalesce -coalesce-pixels 16 -coalesce-wait 5ms >"$TMP/coal.log" 2>&1 &
PID_COAL=$!

wait_healthy() {
    i=0
    until curl -fsS "http://$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "coalesce-smoke: $1 never became healthy" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_healthy "$ADDR_DIRECT" "$TMP/direct.log"
wait_healthy "$ADDR_COAL" "$TMP/coal.log"

# The coalesced server must advertise the batcher on /debug/bfast.
curl -fsS "http://$ADDR_COAL/debug/bfast" | grep -q "\"coalesce\": *true" || {
    echo "coalesce-smoke: /debug/bfast does not report coalesce" >&2
    exit 1
}

# Small 1-2 pixel bodies with nulls, varied per request so demux mixups
# would be visible in the diff.
for i in $(seq 1 "$REQUESTS"); do
    awk -v seed="$i" 'BEGIN{
        srand(seed); m=1+seed%2; printf "{\"pixels\":[";
        for(p=0;p<m;p++){ if(p)printf ","; printf "[";
            for(t=0;t<60;t++){ if(t)printf ",";
                if(rand()<0.2){printf "null"}
                else{printf "%.4f", 0.5+0.3*sin(2*3.14159*(t+1)/23)+(rand()-0.5)*0.05+(seed%7)*0.01} }
            printf "]" }
        printf "],\"history\":30}"
    }' >"$TMP/body.$i.json"
done

# Fire the whole set at the coalesced server concurrently (so requests
# actually merge), and at the direct server for the reference bytes.
# Wait on the curl PIDs explicitly — a bare `wait` would block on the
# server processes too.
CURL_PIDS=""
for i in $(seq 1 "$REQUESTS"); do
    curl -fsS "http://$ADDR_COAL/v1/batch" --data-binary "@$TMP/body.$i.json" -o "$TMP/coal.$i.json" &
    CURL_PIDS="$CURL_PIDS $!"
done
for pid in $CURL_PIDS; do
    wait "$pid"
done
for i in $(seq 1 "$REQUESTS"); do
    curl -fsS "http://$ADDR_DIRECT/v1/batch" --data-binary "@$TMP/body.$i.json" -o "$TMP/direct.$i.json"
done

for i in $(seq 1 "$REQUESTS"); do
    cmp -s "$TMP/direct.$i.json" "$TMP/coal.$i.json" || {
        echo "coalesce-smoke: response $i differs between paths" >&2
        echo "direct: $(cat "$TMP/direct.$i.json")" >&2
        echo "coal:   $(cat "$TMP/coal.$i.json")" >&2
        exit 1
    }
done

# The batcher's metric families must exist and have moved.
metrics=$(curl -fsS "http://$ADDR_COAL/metrics")
for key in coalesce.requests coalesce.pixels coalesce.flushes coalesce.flush.pixels; do
    echo "$metrics" | grep -q "\"$key\"" || {
        echo "coalesce-smoke: /metrics missing $key" >&2
        echo "$metrics" >&2
        exit 1
    }
done

# Graceful drain: SIGTERM on the coalesced server must exit 0.
kill -TERM "$PID_COAL"
i=0
while kill -0 "$PID_COAL" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "coalesce-smoke: coalesced server did not shut down" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID_COAL" && status=0 || status=$?
if [ "$status" -ne 0 ]; then
    echo "coalesce-smoke: shutdown exit status $status" >&2
    cat "$TMP/coal.log" >&2
    exit 1
fi
kill -TERM "$PID_DIRECT" 2>/dev/null || true
echo "coalesce-smoke: ok ($REQUESTS requests byte-identical across paths)"
