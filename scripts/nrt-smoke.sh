#!/bin/sh
# End-to-end smoke for the stateful NRT serving path: boots bfast-serve
# with a state directory, fits a small scene (/v1/fit), observes two
# acquisition dates (/v1/observe), SIGTERMs the server, reboots it from
# the on-disk snapshots, observes the remaining dates, and diffs the
# final verdicts against a single offline /v1/batch run over the full
# series — the restart must be invisible in the results. Used by
# `make nrt-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18092}
M=${M:-8}
N=${N:-80}
HIST=${HIST:-40}
TMP=$(mktemp -d)
PID=""
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

$GO build -o "$TMP/bfast-serve" ./cmd/bfast-serve

# gen emits deterministic JSON value rows for the synthetic scene:
#   gen pixels <from> <to>  -> [[...],...]  pixel-major, dates from..to
#   gen dates  <from> <to>  -> [[...],...]  date-major rows for observe
# Values are a harmonic + deterministic pseudo-noise, ~20% missing as
# null, and the second half of the pixels breaks downward at t=60. The
# same formula drives fit, observe and the offline reference, so any
# byte that differs between paths is the server's doing.
gen() {
    awk -v mode="$1" -v from="$2" -v to="$3" -v M="$M" 'BEGIN{
        pi = 3.14159265358979
        printf "["
        if (mode == "pixels") { oM = M; oT = 0 } else { oM = to - from; oT = 1 }
        for (r = 0; r < (mode == "pixels" ? M : to - from); r++) {
            if (r) printf ","
            printf "["
            lo = (mode == "pixels") ? from : 0
            hi = (mode == "pixels") ? to : M
            for (c = lo; c < hi; c++) {
                if (c > lo) printf ","
                if (mode == "pixels") { p = r; t = c } else { p = c; t = from + r }
                if (sin(p * 7.1 + t * 3.3) > 0.55) { printf "null"; continue }
                v = 0.5 + 0.3 * sin(2 * pi * (t + 1) / 23) + 0.02 * sin(p * 131.7 + t * 17.3)
                if (p >= M / 2 && t >= 60) v -= 0.7
                printf "%.6f", v
            }
            printf "]"
        }
        printf "]"
    }' </dev/null
}

boot() {
    "$TMP/bfast-serve" -addr "$ADDR" -state-dir "$TMP/state" >"$TMP/serve.$1.log" 2>&1 &
    PID=$!
    i=0
    until curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "nrt-smoke: server never became healthy ($1)" >&2
            cat "$TMP/serve.$1.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stop() {
    kill -TERM "$PID"
    i=0
    while kill -0 "$PID" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "nrt-smoke: server did not shut down" >&2
            exit 1
        fi
        sleep 0.1
    done
    wait "$PID" && status=0 || status=$?
    if [ "$status" -ne 0 ]; then
        echo "nrt-smoke: shutdown exit status $status" >&2
        cat "$TMP/serve.$1.log" >&2
        exit 1
    fi
    PID=""
}

boot first

# Fit the history period; capacity reserves room for the full series.
printf '{"pixels":%s,"history":%d,"capacity":%d}' "$(gen pixels 0 "$HIST")" "$HIST" "$N" >"$TMP/fit.json"
curl -fsS "http://$ADDR/v1/fit" --data-binary "@$TMP/fit.json" -o "$TMP/fitresp.json"
SID=$(sed -n 's/.*"session":"\([^"]*\)".*/\1/p' "$TMP/fitresp.json")
if [ -z "$SID" ]; then
    echo "nrt-smoke: fit returned no session id: $(cat "$TMP/fitresp.json")" >&2
    exit 1
fi

# Two acquisition dates arrive, then the process dies.
printf '{"session":"%s","dates":%s}' "$SID" "$(gen dates "$HIST" $((HIST + 2)))" >"$TMP/obs1.json"
curl -fsS "http://$ADDR/v1/observe" --data-binary "@$TMP/obs1.json" -o "$TMP/obs1resp.json"
grep -q "\"next_date\":$((HIST + 2))" "$TMP/obs1resp.json" || {
    echo "nrt-smoke: first observe cursor wrong: $(cat "$TMP/obs1resp.json")" >&2
    exit 1
}
stop first

# Reboot from the snapshots; the session must come back with its cursor.
boot second
curl -fsS "http://$ADDR/v1/sessions" -o "$TMP/sessions.json"
grep -q "\"$SID\"" "$TMP/sessions.json" || {
    echo "nrt-smoke: session $SID not restored: $(cat "$TMP/sessions.json")" >&2
    exit 1
}
grep -q "\"next_date\":$((HIST + 2))" "$TMP/sessions.json" || {
    echo "nrt-smoke: restored cursor wrong: $(cat "$TMP/sessions.json")" >&2
    exit 1
}

# The remaining dates arrive after the restart.
printf '{"session":"%s","dates":%s}' "$SID" "$(gen dates $((HIST + 2)) "$N")" >"$TMP/obs2.json"
curl -fsS "http://$ADDR/v1/observe" --data-binary "@$TMP/obs2.json" -o "$TMP/obs2resp.json"

# Offline reference: one /v1/batch over the full series on the same
# server. The NRT verdict stream (fit, observe, crash, restart,
# observe) must land on the same break indices and magnitudes.
printf '{"pixels":%s,"history":%d}' "$(gen pixels 0 "$N")" "$HIST" >"$TMP/batch.json"
curl -fsS "http://$ADDR/v1/batch" --data-binary "@$TMP/batch.json" -o "$TMP/batchresp.json"

extract() { # ordered per-pixel "field" sequences, one per line
    grep -o "\"$2\":[^,}]*" "$1" | cut -d: -f2-
}
extract "$TMP/obs2resp.json" breakIndex >"$TMP/nrt.breaks"
extract "$TMP/batchresp.json" breakIndex >"$TMP/ref.breaks"
cmp -s "$TMP/nrt.breaks" "$TMP/ref.breaks" || {
    echo "nrt-smoke: break indices diverged from the offline run" >&2
    echo "nrt: $(cat "$TMP/nrt.breaks" | tr '\n' ' ')" >&2
    echo "ref: $(cat "$TMP/ref.breaks" | tr '\n' ' ')" >&2
    exit 1
}
extract "$TMP/obs2resp.json" magnitude >"$TMP/nrt.mags"
extract "$TMP/batchresp.json" magnitude >"$TMP/ref.mags"
cmp -s "$TMP/nrt.mags" "$TMP/ref.mags" || {
    echo "nrt-smoke: magnitudes diverged from the offline run" >&2
    echo "nrt: $(cat "$TMP/nrt.mags" | tr '\n' ' ')" >&2
    echo "ref: $(cat "$TMP/ref.mags" | tr '\n' ' ')" >&2
    exit 1
}
# Sanity on the scene itself: the injected t=60 breaks are found
# (monitoring offset ~= 60 - HIST) and at least one stable pixel
# reports none — i.e. the agreement above isn't everything-breaks-
# everywhere degeneracy.
grep -q '"breakIndex":2[0-9]' "$TMP/obs2resp.json" || {
    echo "nrt-smoke: expected the injected t=60 break to be detected" >&2
    cat "$TMP/obs2resp.json" >&2
    exit 1
}
grep -q '"breakIndex":-1' "$TMP/obs2resp.json" || {
    echo "nrt-smoke: expected at least one stable pixel" >&2
    cat "$TMP/obs2resp.json" >&2
    exit 1
}

# The nrt.* metric families must exist and have moved.
metrics=$(curl -fsS "http://$ADDR/metrics")
for key in nrt.sessions.active nrt.fits nrt.observes nrt.snapshots.saved nrt.snapshots.loaded; do
    echo "$metrics" | grep -q "\"$key\"" || {
        echo "nrt-smoke: /metrics missing $key" >&2
        echo "$metrics" >&2
        exit 1
    }
done

stop second
echo "nrt-smoke: ok (restart invisible: $M pixels, $((N - HIST)) observed dates match offline run)"
