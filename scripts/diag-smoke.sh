#!/bin/sh
# End-to-end smoke of the production-diagnostics layer (DESIGN.md §7):
# boots bfast-serve with a diagnostics directory and an aggressive slow
# threshold, drives normal + slow + error traffic, and asserts that
#   - tail-sampled traces persist to <diag-dir>/traces.jsonl and are
#     served (merged with the ring) by /debug/bfast/traces;
#   - a persisted trace survives a SIGTERM restart and comes back with
#     source "disk" and its sampling reason;
#   - the latency histograms carry OpenMetrics exemplars whose trace ID
#     resolves via /debug/bfast/traces?request_id=;
#   - the slo.* burn-rate gauge families are exported;
#   - GET /debug/bfast/flight streams a non-empty tar.gz holding the
#     metrics, traces, config and manifest members.
# Used by `make diag-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18084}
TMP=$(mktemp -d)
DIAG="$TMP/diag"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

$GO build -o "$TMP/bfast-serve" ./cmd/bfast-serve

boot() {
    # -diag-slow-ms 1: anything slower than 1ms tail-samples, so the
    # batch request below persists deterministically as "slow".
    "$TMP/bfast-serve" -addr "$ADDR" -diag-dir "$DIAG" -diag-slow-ms 1 \
        >"$TMP/serve.log" 2>&1 &
    PID=$!
    i=0
    until curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "diag-smoke: server never became healthy" >&2
            cat "$TMP/serve.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}
boot

# Traffic: one real batch detection (slow by the 1ms threshold), and one
# malformed request (a guaranteed "error" tail sample) under a known ID.
series=$(awk 'BEGIN{s="";for(t=0;t<60;t++){v=0.5+0.3*sin(2*3.14159*t/23);s=s v ",";}print substr(s,1,length(s)-1)}')
out=$(curl -fsS "http://$ADDR/v1/batch" -H 'X-Request-ID: diag-smoke-batch' \
    -d "{\"pixels\":[[$series],[$series]],\"history\":30}")
echo "$out" | grep -q '"status"' || { echo "diag-smoke: batch response malformed: $out" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/detect" \
    -H 'X-Request-ID: diag-smoke-err' -d '{"history":5}')
[ "$code" = "400" ] || { echo "diag-smoke: error request returned $code, want 400" >&2; exit 1; }

# The tail sampler wrote both survivors to the trace log.
[ -s "$DIAG/traces.jsonl" ] || { echo "diag-smoke: $DIAG/traces.jsonl missing or empty" >&2; exit 1; }
grep -q '"request_id":"diag-smoke-err"' "$DIAG/traces.jsonl" ||
    { echo "diag-smoke: error trace not persisted" >&2; exit 1; }

# Exemplar on a latency bucket, resolving back to the batch trace.
curl -fsS "http://$ADDR/metrics?format=prometheus" >"$TMP/metrics.prom"
grep -q '# {trace_id="diag-smoke-batch"}' "$TMP/metrics.prom" ||
    { echo "diag-smoke: no exemplar for the batch request in /metrics" >&2; exit 1; }
grep -q '^slo_batch_burn_rate_5m_milli ' "$TMP/metrics.prom" ||
    { echo "diag-smoke: slo.* burn-rate gauges missing" >&2; exit 1; }
curl -fsS "http://$ADDR/debug/bfast/traces?request_id=diag-smoke-batch" >/dev/null ||
    { echo "diag-smoke: exemplar trace ID does not resolve" >&2; exit 1; }

# Flight bundle: one GET, a well-formed non-empty tar.gz.
curl -fsS "http://$ADDR/debug/bfast/flight" >"$TMP/flight.tar.gz"
[ -s "$TMP/flight.tar.gz" ] || { echo "diag-smoke: empty flight bundle" >&2; exit 1; }
tar -tzf "$TMP/flight.tar.gz" >"$TMP/flight.members"
for member in metrics.json metrics.prom traces_ring.json traces_persisted.jsonl config.json runtime.json manifest.json; do
    grep -qx "$member" "$TMP/flight.members" ||
        { echo "diag-smoke: flight bundle missing $member:" >&2; cat "$TMP/flight.members" >&2; exit 1; }
done

# Restart: the persisted error trace must come back from disk.
kill -TERM "$PID"
wait "$PID" || { echo "diag-smoke: shutdown failed" >&2; cat "$TMP/serve.log" >&2; exit 1; }
boot
curl -fsS "http://$ADDR/debug/bfast/traces" >"$TMP/traces.json"
grep -q '"request_id":"diag-smoke-err"' "$TMP/traces.json" ||
    { echo "diag-smoke: persisted trace lost across restart" >&2; cat "$TMP/traces.json" >&2; exit 1; }
grep -q '"source":"disk"' "$TMP/traces.json" ||
    { echo "diag-smoke: restarted traces carry no disk entries" >&2; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "diag-smoke: second shutdown failed" >&2; cat "$TMP/serve.log" >&2; exit 1; }
echo "diag-smoke: ok"
