#!/bin/sh
# Boots bfast-serve on a private port, drives one batch detection so the
# kernel/scheduler/tile metric families move, then validates the /metrics
# surface in both formats: the JSON default, and the Prometheus text
# exposition (Accept negotiation and ?format= override, line syntax,
# cumulative-le bucket invariant). The set of exported metric families is
# pinned against scripts/metrics.golden so a renamed or dropped family
# fails CI; regenerate with METRICS_GOLDEN_REGEN=1 after intended changes.
# Used by `make metrics-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18081}
GOLDEN=${GOLDEN:-scripts/metrics.golden}
TMP=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

$GO build -o "$TMP/bfast-serve" ./cmd/bfast-serve
# -coalesce so the coalesce.* batcher families are part of the pinned
# exposition surface too; -diag-dir so the diag.* tail-sampler and
# profile-capture families (and the slo.* gauges' exemplar path) are;
# -state-dir so the state.file.* snapshot-store families are (metricdoc
# cross-checks every registration site against this golden, so the boot
# must light up every optional subsystem that registers metrics).
"$TMP/bfast-serve" -addr "$ADDR" -runtime-sample 50ms -coalesce -diag-dir "$TMP/diag" -state-dir "$TMP/state" >"$TMP/serve.log" 2>&1 &
PID=$!

i=0
until curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "metrics-smoke: server never became healthy" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done

# One batch detection: lights up server.*, kernel phase spans, sched loop
# skew and tile padding histograms in a single request.
series=$(awk 'BEGIN{s="";for(t=0;t<60;t++){v=0.5+0.3*sin(2*3.14159*t/23);s=s v ",";}print substr(s,1,length(s)-1)}')
out=$(curl -fsS "http://$ADDR/v1/batch" -d "{\"pixels\":[[$series],[$series]],\"history\":30}")
echo "$out" | grep -q '"status"' || { echo "metrics-smoke: batch response malformed: $out" >&2; exit 1; }
# Give the runtime sampler a tick so runtime.* gauges are populated.
sleep 0.2

# JSON stays the default exposition.
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.json"
grep -q '"server.detect.requests"' "$TMP/metrics.json" ||
    { echo "metrics-smoke: JSON default missing server.detect.requests" >&2; exit 1; }

# Prometheus text via Accept negotiation and via the ?format= override;
# the families exported must be identical either way.
curl -fsS -H 'Accept: text/plain' "http://$ADDR/metrics" >"$TMP/metrics.prom"
curl -fsS "http://$ADDR/metrics?format=prometheus" >"$TMP/metrics.prom2"
grep '^# TYPE ' "$TMP/metrics.prom" | sort >"$TMP/families"
grep '^# TYPE ' "$TMP/metrics.prom2" | sort >"$TMP/families2"
cmp -s "$TMP/families" "$TMP/families2" ||
    { echo "metrics-smoke: Accept and ?format= expositions disagree" >&2; exit 1; }

# Every non-comment line must be `name{labels} value` Prometheus syntax,
# optionally followed by an OpenMetrics exemplar suffix
# (` # {trace_id="..."} value timestamp`) on histogram bucket lines.
LINE_RE='^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9+.eE-]+( # \{[^{}]*\} -?[0-9+.eE-]+ -?[0-9+.eE-]+)?$'
bad=$(grep -v '^#' "$TMP/metrics.prom" |
    grep -Evc "$LINE_RE" || true)
if [ "$bad" -ne 0 ]; then
    echo "metrics-smoke: $bad malformed exposition lines:" >&2
    grep -v '^#' "$TMP/metrics.prom" |
        grep -Ev "$LINE_RE" >&2
    exit 1
fi

# The diagnostics layer must put at least one exemplar on a latency
# bucket: the batch request above completed with a request ID.
grep -q '# {trace_id="' "$TMP/metrics.prom" ||
    { echo "metrics-smoke: no exemplar on any histogram bucket" >&2; exit 1; }

# Cumulative-le invariant: the +Inf bucket of a histogram equals its _count.
inf=$(grep -F 'server_detect_latency_ms_bucket{le="+Inf"}' "$TMP/metrics.prom" | awk '{print $2}')
cnt=$(grep '^server_detect_latency_ms_count ' "$TMP/metrics.prom" | awk '{print $2}')
[ -n "$inf" ] && [ "$inf" = "$cnt" ] ||
    { echo "metrics-smoke: +Inf bucket ($inf) != _count ($cnt)" >&2; exit 1; }

# The families that must exist after one batch request. Pinned as a golden
# file so a silent rename/drop of a metric is caught.
if [ "${METRICS_GOLDEN_REGEN:-0}" = "1" ]; then
    cp "$TMP/families" "$GOLDEN"
    echo "metrics-smoke: regenerated $GOLDEN ($(wc -l <"$GOLDEN") families)"
else
    diff -u "$GOLDEN" "$TMP/families" || {
        echo "metrics-smoke: exported families diverge from $GOLDEN (regenerate with METRICS_GOLDEN_REGEN=1 if intended)" >&2
        exit 1
    }
fi

kill -TERM "$PID"
wait "$PID" || { echo "metrics-smoke: shutdown failed" >&2; cat "$TMP/serve.log" >&2; exit 1; }
echo "metrics-smoke: ok"
