#!/bin/sh
# lint-selfcheck.sh — prove the bfast-lint driver itself still works.
#
# A lint gate that silently stops finding anything is worse than no
# gate: `make ci` would keep passing while the analyzers rot. This
# script runs the real bfast-lint binary (the standalone driver, not
# the test harness) over the analyzer fixtures in
# internal/analysis/testdata/src and asserts the known diagnostics
# come out: one sentinel finding per analyzer, the exact total, a
# clean exit on a clean package, and a well-formed -json rendering.
#
# The fixtures import fixture-local fake packages ("obs", "compat", …)
# by bare path, so they are loaded GOPATH-style: the testdata/src tree
# is symlinked in as a GOPATH src root and the driver runs with
# GO111MODULE=off. That is the same source the analysistest harness
# type-checks, but through the production `go list -export` loader —
# the path a broken Load/Check/Finish wiring would break.
#
# When fixtures change, EXPECT_TOTAL below must be updated to match —
# deliberately, so fixture drift is a conscious decision.
set -eu

cd "$(dirname "$0")/.."
ROOT="$(pwd)"

EXPECT_TOTAL=46

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

fail() {
	echo "lint-selfcheck: FAIL: $*" >&2
	exit 1
}

go build -o "$TMP/bfast-lint" ./cmd/bfast-lint

mkdir -p "$TMP/gopath"
ln -s "$ROOT/internal/analysis/testdata/src" "$TMP/gopath/src"

run_lint() {
	(
		cd "$TMP/gopath/src" &&
			GO111MODULE=off GOWORK=off GOPATH="$TMP/gopath" \
				"$TMP/bfast-lint" "$@"
	)
}

# --- full fixture sweep: exit 1, every analyzer fires, exact total ---
status=0
run_lint ./... >"$TMP/out.txt" 2>&1 || status=$?
[ "$status" -eq 1 ] || {
	cat "$TMP/out.txt" >&2
	fail "fixture sweep exited $status, want 1 (findings)"
}

# One sentinel diagnostic per analyzer (plus the //lint:allow driver
# and metricdoc's Finish direction): if any stops firing, the driver
# or the analyzer regressed.
while IFS='|' read -r sentinel label; do
	grep -qF "$sentinel" "$TMP/out.txt" || {
		cat "$TMP/out.txt" >&2
		fail "missing $label sentinel: $sentinel"
	}
done <<'EOF'
float64 values compared with ==|nanguard
kernels are allocation-free|kernelalloc
the hot-path contract is ctx-first|ctxfirst
span from obs.StartSpan is never Ended|spanpair
span from obs.StartSpan may leak|spanpair(path)
call to deprecated compat.DetectBatchStrategy|nodeprecated
is not released on every path|lockpair
self-deadlock|lockpair(held)
fire-and-forget goroutine|golifecycle
mixed access is a data race|atomicguard
is not pinned in scripts/metrics.golden|metricdoc(code->golden)
golden family "svc_orphaned_total" has no registration site|metricdoc(golden->code)
stale //lint:allow|allow(stale)
the reason is mandatory|allow(malformed)
EOF

# The summary line ("bfast-lint: N finding(s)") carries no position;
# count only "path:line:col: msg (analyzer)" lines (Finish findings
# render as path:0:0).
total="$(grep -cE '^[^ ]+:[0-9]+:[0-9]+: ' "$TMP/out.txt" || true)"
[ "$total" -eq "$EXPECT_TOTAL" ] || {
	cat "$TMP/out.txt" >&2
	fail "fixture sweep produced $total findings, want $EXPECT_TOTAL (fixtures changed? update EXPECT_TOTAL)"
}

# --- clean package: exit 0, no output ---
status=0
run_lint ./obs >"$TMP/clean.txt" 2>&1 || status=$?
[ "$status" -eq 0 ] || {
	cat "$TMP/clean.txt" >&2
	fail "clean fixture package ./obs exited $status, want 0"
}
[ ! -s "$TMP/clean.txt" ] || {
	cat "$TMP/clean.txt" >&2
	fail "clean fixture package ./obs produced output"
}

# --- -json mode: exit 1, one object per finding, fields present ---
status=0
run_lint -json ./... >"$TMP/out.json" 2>&1 || status=$?
[ "$status" -eq 1 ] || {
	cat "$TMP/out.json" >&2
	fail "-json sweep exited $status, want 1"
}
jtotal="$(grep -c '"analyzer":' "$TMP/out.json" || true)"
[ "$jtotal" -eq "$EXPECT_TOTAL" ] || {
	cat "$TMP/out.json" >&2
	fail "-json sweep rendered $jtotal findings, want $EXPECT_TOTAL"
}
grep -q '"message":' "$TMP/out.json" || fail "-json output missing message fields"
grep -q '"file":' "$TMP/out.json" || fail "-json output missing file fields"

echo "lint-selfcheck: OK ($EXPECT_TOTAL findings, clean package clean, json well-formed)"
