#!/bin/sh
# Compares two bfast-bench JSON reports (the tiles or tune experiment)
# and prints the per-strategy speedup delta: new vs old Masked/Tiled
# ratio. Exits non-zero when any strategy's speedup regressed by more
# than the tolerance (percent, default 10), or when any row of the new
# report lost bit-identity. Used by `make bench-compare`:
#
#   bfast-bench -exp tiles -json > old.json
#   ... change kernels ...
#   bfast-bench -exp tiles -json > new.json
#   ./scripts/bench-compare.sh old.json new.json [tolerance-pct]
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 OLD.json NEW.json [tolerance-pct]" >&2
    exit 2
fi
OLD=$1
NEW=$2
TOL=${3:-10}

command -v jq >/dev/null 2>&1 || {
    echo "bench-compare: jq is required" >&2
    exit 2
}

# Rows live under .results.tiles (an array) or .results.tune.rows; both
# carry {Strategy, Speedup, Identical}.
rows() {
    jq -r '(.results.tiles // .results.tune.rows // [])[]
           | "\(.Strategy) \(.Speedup) \(.Identical)"' "$1"
}

old_rows=$(rows "$OLD")
new_rows=$(rows "$NEW")
if [ -z "$old_rows" ] || [ -z "$new_rows" ]; then
    echo "bench-compare: no tiles/tune rows found (need -exp tiles or -exp tune reports)" >&2
    exit 2
fi

printf '%-14s %10s %10s %8s %10s\n' strategy old new delta identical
fail=0
echo "$new_rows" | while read -r strat new_speedup identical; do
    old_speedup=$(echo "$old_rows" | awk -v s="$strat" '$1 == s {print $2; exit}')
    if [ -z "$old_speedup" ]; then
        printf '%-14s %10s %10.2fx %8s %10s\n' "$strat" "-" "$new_speedup" "new" "$identical"
        continue
    fi
    awk -v s="$strat" -v o="$old_speedup" -v n="$new_speedup" -v id="$identical" -v tol="$TOL" '
        BEGIN {
            delta = (n - o) / o * 100
            printf "%-14s %9.2fx %9.2fx %+7.1f%% %10s\n", s, o, n, delta, id
            bad = 0
            if (id != "true") { printf "bench-compare: %s lost bit-identity\n", s > "/dev/stderr"; bad = 1 }
            if (delta < -tol) { printf "bench-compare: %s regressed %.1f%% (tolerance %s%%)\n", s, -delta, tol > "/dev/stderr"; bad = 1 }
            exit bad
        }' || exit 1
done || fail=1

if [ "$fail" -ne 0 ]; then
    echo "bench-compare: FAIL (tolerance ${TOL}%)" >&2
    exit 1
fi
echo "bench-compare: OK (tolerance ${TOL}%)"
