#!/bin/sh
# Boots bfast-serve on a private port, exercises the serving surface
# (healthz, one detect request, /metrics content), then verifies a clean
# graceful shutdown on SIGTERM. Used by `make serve-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18080}
TMP=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

$GO build -o "$TMP/bfast-serve" ./cmd/bfast-serve
"$TMP/bfast-serve" -addr "$ADDR" >"$TMP/serve.log" 2>&1 &
PID=$!

# Wait for readiness.
i=0
until curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: server never became healthy" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done

# One real detection so kernel/scheduler metrics move.
series=$(awk 'BEGIN{s="";for(t=0;t<60;t++){v=0.5+0.3*sin(2*3.14159*t/23);s=s v ",";}print substr(s,1,length(s)-1)}')
out=$(curl -fsS "http://$ADDR/v1/detect" -d "{\"series\":[$series],\"history\":30}")
echo "$out" | grep -q '"status"' || { echo "serve-smoke: detect response malformed: $out" >&2; exit 1; }

# /metrics must carry the serving, scheduler and kernel counter families.
metrics=$(curl -fsS "http://$ADDR/metrics")
for key in server.detect.requests server.detect.ok sched.loops kernel.pixels; do
    echo "$metrics" | grep -q "\"$key\"" || {
        echo "serve-smoke: /metrics missing $key" >&2
        echo "$metrics" >&2
        exit 1
    }
done

# Structured errors with stable codes on bad input.
code=$(curl -sS "http://$ADDR/v1/detect" -d '{"series":[1,2,3],"n":5,"history":1}' -o "$TMP/err.json" -w '%{http_code}')
[ "$code" = "400" ] || { echo "serve-smoke: length mismatch gave HTTP $code" >&2; exit 1; }
grep -q '"length_mismatch"' "$TMP/err.json" || { echo "serve-smoke: missing stable error code" >&2; cat "$TMP/err.json" >&2; exit 1; }

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: server did not shut down" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID" && status=0 || status=$?
if [ "$status" -ne 0 ]; then
    echo "serve-smoke: shutdown exit status $status" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
grep -q "stopped" "$TMP/serve.log" || { echo "serve-smoke: no clean-stop log line" >&2; cat "$TMP/serve.log" >&2; exit 1; }
echo "serve-smoke: ok"
