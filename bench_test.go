// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// prints the paper-style rows once (with the paper's reported values in
// the header lines) and then times the experiment; cmd/bfast-bench runs
// the same harness at full sample sizes.
//
//	go test -bench=. -benchmem
package bfast

import (
	"context"

	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"bfast/internal/benchutil"
	"bfast/internal/core"
	"bfast/internal/workload"
)

// benchSampleM keeps per-iteration cost moderate; bump with
// cmd/bfast-bench -sample for higher-fidelity runs.
const benchSampleM = 1024

var printOnce sync.Map

// runExperiment prints the experiment's report the first time a benchmark
// runs, then re-runs it silently b.N times for timing.
func runExperiment(b *testing.B, name string, cfg benchutil.Config) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(name, true); !done {
		cfg.Out = os.Stdout
		fmt.Println()
		if err := benchutil.Run(context.Background(), name, cfg); err != nil {
			b.Fatal(err)
		}
	}
	cfg.Out = io.Discard
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchutil.Run(context.Background(), name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCfg() benchutil.Config {
	return benchutil.Config{SampleM: benchSampleM}
}

// BenchmarkTable1Datasets regenerates Table I: the eight dataset specs
// and the realized missing-value frequency of the generator.
func BenchmarkTable1Datasets(b *testing.B) {
	runExperiment(b, "table1", benchCfg())
}

// BenchmarkFig6MaskedMatMul regenerates Figure 6: batch-masked matrix
// multiplication, register-tiled vs block-tiled vs naive, GFlops^Sp on
// every Table I dataset.
func BenchmarkFig6MaskedMatMul(b *testing.B) {
	runExperiment(b, "fig6", benchCfg())
}

// BenchmarkFig7MatInv regenerates Figure 7: batched Gauss-Jordan
// inversion, shared-memory vs global-memory, GFlops^Sp.
func BenchmarkFig7MatInv(b *testing.B) {
	runExperiment(b, "fig7", benchCfg())
}

// BenchmarkFig8Application regenerates Figure 8: whole-application
// GFlops^Sp for Ours / RgTl-EfSeq / Full-EfSeq (modeled) and the parallel
// CPU baseline (measured on this host).
func BenchmarkFig8Application(b *testing.B) {
	cfg := benchCfg()
	// The measured CPU column re-runs per iteration; keep datasets trim.
	cfg.Datasets = []string{"D1", "D2", "D4", "D6", "Peru (Small)", "Africa (Small)"}
	runExperiment(b, "fig8", cfg)
}

// BenchmarkFig10Pipeline regenerates Figure 10: the per-phase pipeline
// breakdown for the Peru (Small/Large) and Africa per-image scenarios,
// with the paper's 50-chunk split for the large ones.
func BenchmarkFig10Pipeline(b *testing.B) {
	cfg := benchCfg()
	cfg.SampleM = 256 // scenarios scale with SampleM*16
	runExperiment(b, "fig10", cfg)
}

// BenchmarkMapsPeru regenerates the qualitative map experiment of
// Figs. 3/9: detection over the Peru-like scene scored against injected
// ground truth (maps are written by cmd/bfast-bench -maps-dir).
func BenchmarkMapsPeru(b *testing.B) {
	cfg := benchCfg()
	cfg.SampleM = 256
	runExperiment(b, "maps", cfg)
}

// BenchmarkSpeedups regenerates the §IV-C / §V-B headline ratios: modeled
// GPU vs measured parallel CPU vs measured single-thread vs the R-style
// implementation.
func BenchmarkSpeedups(b *testing.B) {
	runExperiment(b, "speedups", benchCfg())
}

// BenchmarkSweepMonitoringPeriods regenerates §V-C: consecutive one-year
// monitoring periods over the Peru-like scene.
func BenchmarkSweepMonitoringPeriods(b *testing.B) {
	cfg := benchCfg()
	cfg.SampleM = 256
	runExperiment(b, "sweep", cfg)
}

// BenchmarkDetectBatchCPU times the production CPU path itself (pixels
// per second on this host) on D2 geometry, reported as ns/pixel.
func BenchmarkDetectBatchCPU(b *testing.B) {
	spec, err := PresetScene("D2")
	if err != nil {
		b.Fatal(err)
	}
	spec.M = 2048
	spec.Width = 0
	scene, err := GenerateScene(spec)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := SceneBatch(scene)
	if err != nil {
		b.Fatal(err)
	}
	det, err := NewDetector(spec.N, DefaultOptions(spec.History))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.DetectBatch(context.Background(), batch, BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*spec.M), "ns/pixel")
}

// skewedNaNBatch builds the PR-1 benchmark workload: a 50%-NaN scene with
// spatially-correlated cloud masks, the regime where per-pixel cost is
// maximally uneven across the batch.
func skewedNaNBatch(b *testing.B) (*core.Batch, core.Options) {
	b.Helper()
	ds, err := workload.Generate(workload.Spec{
		Name: "skew50", M: 2048, N: 412, History: 206,
		NaNFrac: 0.5, Mask: workload.MaskClouds, BreakFrac: 0.3, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	batch, err := core.NewBatch(2048, 412, ds.Y)
	if err != nil {
		b.Fatal(err)
	}
	return batch, core.DefaultOptions(206)
}

// BenchmarkSeedBatchSkewedNaN times the retained seed batched path
// (per-element NaN tests, static contiguous chunks) on the skewed scene —
// the "before" side of the PR-1 masks experiment.
func BenchmarkSeedBatchSkewedNaN(b *testing.B) {
	batch, opt := skewedNaNBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DetectBatchReference(batch, opt, core.BatchConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch.M), "ns/pixel")
}

// BenchmarkMaskedBatchSkewedNaN times the bitset-mask + work-stealing
// batched path on the same skewed scene — the "after" side. Compare with
// BenchmarkSeedBatchSkewedNaN; BENCH_PR1.json records the tracked ratio.
func BenchmarkMaskedBatchSkewedNaN(b *testing.B) {
	batch, opt := skewedNaNBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DetectBatch(context.Background(), batch, opt, core.BatchConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch.M), "ns/pixel")
}

// BenchmarkMasksExperiment runs the full before/after masks experiment
// (both batch strategies plus the C-like baseline, identity-checked).
func BenchmarkMasksExperiment(b *testing.B) {
	runExperiment(b, "masks", benchCfg())
}

// BenchmarkAblations runs the design-choice sweeps of DESIGN.md: the
// register-tile size R, the model order k, the missing-value frequency,
// and the sampled-simulation accuracy check.
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, "ablations", benchCfg())
}

// BenchmarkClaimsScorecard checks every qualitative claim of the paper's
// evaluation programmatically and prints the PASS/FAIL scorecard.
func BenchmarkClaimsScorecard(b *testing.B) {
	runExperiment(b, "claims", benchCfg())
}

// BenchmarkCoalesceServing measures micro-batched serving against the
// per-request path under concurrent 1–4-pixel /v1/batch load, asserting
// the responses stay byte-identical (see BENCH_PR7.json).
func BenchmarkCoalesceServing(b *testing.B) {
	runExperiment(b, "coalesce", benchCfg())
}
