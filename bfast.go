// Package bfast is a pure-Go implementation of BFAST-Monitor — break
// detection for additive season and trend models — for satellite time
// series with missing values, reproducing the massively-parallel system of
// Gieseke et al., "Massively-Parallel Change Detection for Satellite Time
// Series Data with Missing Values" (ICDE 2020).
//
// The package offers three levels of use:
//
//   - Detector: fit-and-monitor for single pixel series or in-memory
//     batches, parallelized across CPU cores (the production path).
//   - ProcessCube: the full application pipeline — chunking, empty-slice
//     removal, detection, break-map assembly — over a data cube.
//   - SimulateGPU: the instrumented GPU-execution simulation used to
//     reproduce the paper's performance figures (see DESIGN.md and
//     EXPERIMENTS.md).
//
// A minimal example:
//
//	opt := bfast.DefaultOptions(113) // history = first 113 dates
//	det, err := bfast.NewDetector(235, opt)
//	res, err := det.Detect(ctx, series) // series: 235 values, NaN = missing
//	if res.HasBreak() { ... }
//
// All batch entry points take a context.Context: deadlines and
// cancellations propagate into the work-stealing scheduler at steal-unit
// granularity, so a cancelled call stops scheduling work promptly
// instead of running every pixel (see DESIGN.md §6).
package bfast

import (
	"context"
	"fmt"

	"bfast/internal/autotune"
	"bfast/internal/baseline"
	"bfast/internal/core"
	"bfast/internal/cube"
	"bfast/internal/history"
	"bfast/internal/series"
	"bfast/internal/stats"
)

// Options configures a BFAST-Monitor run; see DefaultOptions.
type Options = core.Options

// Result is the per-pixel output: break index, magnitude, diagnostics.
type Result = core.Result

// Status classifies whether a pixel could be modeled and monitored.
type Status = core.Status

// Batch is a dense M×N in-memory pixel batch (NaN = missing).
type Batch = core.Batch

// Strategy selects the batched execution organization (see Fig. 8 of the
// paper); the default StrategyOurs is right for almost all uses.
type Strategy = core.Strategy

// Solver selects the linear-system method used for model fitting.
type Solver = core.Solver

// Re-exported enumeration values. See the core package for semantics.
const (
	StatusOK                  = core.StatusOK
	StatusInsufficientHistory = core.StatusInsufficientHistory
	StatusSingular            = core.StatusSingular
	StatusNoMonitoringData    = core.StatusNoMonitoringData
	StatusNoVariance          = core.StatusNoVariance

	StrategyOurs      = core.StrategyOurs
	StrategyRgTlEfSeq = core.StrategyRgTlEfSeq
	StrategyFullEfSeq = core.StrategyFullEfSeq

	SolverGaussJordan = core.SolverGaussJordan
	SolverPivot       = core.SolverPivot
	SolverCholesky    = core.SolverCholesky

	BoundaryPaper       = stats.BoundaryPaper
	BoundaryStrucchange = stats.BoundaryStrucchange

	SigmaFig12    = stats.SigmaFig12
	SigmaSection2 = stats.SigmaSection2
)

// DefaultOptions returns the bfastmonitor defaults for a given history
// length (in dates): k = 3 harmonics, 16-day frequency (f = 23),
// hf = 0.25, 5% monitoring level.
func DefaultOptions(history int) Options { return core.DefaultOptions(history) }

// NewBatch wraps a flat row-major M×N pixel matrix as a Batch.
func NewBatch(m, n int, y []float64) (*Batch, error) { return core.NewBatch(m, n, y) }

// Detector holds a validated option set and the precomputed design matrix
// for a fixed series length, ready to process any number of pixels.
type Detector struct {
	opt    Options
	n      int
	design *series.DesignMatrix
}

// NewDetector validates opt against series length n and precomputes the
// design matrix (Eq. 3 of the paper).
func NewDetector(n int, opt Options) (*Detector, error) {
	if err := opt.Validate(n); err != nil {
		return nil, err
	}
	if _, err := opt.ResolveLambda(); err != nil {
		return nil, err
	}
	x, err := core.DesignFor(opt, n)
	if err != nil {
		return nil, err
	}
	return &Detector{opt: opt, n: n, design: x}, nil
}

// Options returns the detector's option set.
func (d *Detector) Options() Options { return d.opt }

// SeriesLen returns the series length the detector was built for.
func (d *Detector) SeriesLen() int { return d.n }

// BatchOptions configures a DetectBatch call — the consolidated knobs of
// the old pre-context DetectBatch family. The zero value is the
// production default: the paper's winning staged-tiled organization,
// work-stealing across GOMAXPROCS workers, default tile width.
type BatchOptions struct {
	// Workers is the number of goroutines (<= 0 uses GOMAXPROCS).
	Workers int
	// Strategy selects the batched execution organization (the kernel
	// organizations of Fig. 8); the zero value StrategyOurs is right for
	// almost all uses. All strategies return identical results.
	Strategy Strategy
	// TileWidth is T, the pixels per time-major tile of the staged
	// strategies (0 = default, see core.BatchConfig).
	TileWidth int
	// Autotune replaces Strategy/Workers/TileWidth with this host's
	// measured best for the batch's shape (internal/autotune): the first
	// call per (host, K, N, history) runs a sub-second micro-benchmark
	// sweep, later calls hit the in-process or on-disk cache
	// (os.UserCacheDir()/bfast/autotune.json).
	Autotune bool
}

// Detect runs BFAST-Monitor on a single pixel series (length must match
// the detector's series length; NaN marks missing values). The context
// is accepted for interface symmetry with DetectBatch; a single-pixel
// detection is one indivisible unit of work, so it is only checked on
// entry.
func (d *Detector) Detect(ctx context.Context, y []float64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if len(y) != d.n {
		return Result{}, fmt.Errorf("bfast: series length %d, detector built for %d", len(y), d.n)
	}
	return core.Detect(y, d.design, d.opt)
}

// DetectBatch runs BFAST-Monitor over every pixel of the batch in
// parallel and returns one Result per pixel. Cancellation of ctx is
// honored at steal-unit granularity: remaining pixel blocks/tiles are
// abandoned, in-flight ones finish, and ctx.Err() is returned.
//
// This is the consolidated batch entry point: the zero BatchOptions is
// right for almost all uses; Strategy/TileWidth/UseFused expose the
// execution organizations of the paper for benchmarking and tuning.
func (d *Detector) DetectBatch(ctx context.Context, b *Batch, opts BatchOptions) ([]Result, error) {
	if b.N != d.n {
		return nil, fmt.Errorf("bfast: batch has %d dates, detector built for %d", b.N, d.n)
	}
	cfg := core.BatchConfig{
		Strategy:  opts.Strategy,
		Workers:   opts.Workers,
		TileWidth: opts.TileWidth,
		Autotune:  opts.Autotune,
	}
	cfg, err := autotune.Resolve(ctx, cfg, d.n, d.opt)
	if err != nil {
		return nil, fmt.Errorf("bfast: autotune: %w", err)
	}
	return core.DetectBatch(ctx, b, d.opt, cfg)
}

// MosumBoundary returns the monitoring boundary b_t for offset t given the
// detector's options and a pixel's valid-history count — useful for
// plotting the process against its envelope.
func (d *Detector) MosumBoundary(t, validHistory int) (float64, error) {
	lambda, err := d.opt.ResolveLambda()
	if err != nil {
		return 0, err
	}
	return stats.Boundary(d.opt.Boundary, lambda, t, validHistory), nil
}

// SelectStableHistory runs the reverse-ordered CUSUM test (bfastmonitor's
// history = "ROC") on the series' history period and returns the date
// index at which the stable history begins (0 = the whole history is
// stable). level must be 0.10, 0.05 or 0.01.
func (d *Detector) SelectStableHistory(y []float64, level float64) (int, error) {
	if len(y) != d.n {
		return 0, fmt.Errorf("bfast: series length %d, detector built for %d", len(y), d.n)
	}
	return history.ROC(y, d.design, d.opt.History, level)
}

// DetectStable runs SelectStableHistory at the 5% level, masks the
// pre-stable observations, and then runs Detect — the full bfastmonitor
// default pipeline. The returned int is the stable-history start.
func (d *Detector) DetectStable(y []float64) (Result, int, error) {
	start, err := d.SelectStableHistory(y, 0.05)
	if err != nil {
		return Result{}, 0, err
	}
	if start > 0 {
		y = history.MaskUnstable(y, start)
	}
	res, err := d.Detect(context.Background(), y)
	return res, start, err
}

// Cube is a W×H×dates raster stack (see the cube package for IO).
type Cube = cube.Cube

// BreakMap is a rendered detection result raster.
type BreakMap = cube.BreakMap

// NewCube returns an all-NaN cube.
func NewCube(w, h, dates int) (*Cube, error) { return cube.New(w, h, dates) }

// CubeFromFlat wraps flat pixel-major data as a cube.
func CubeFromFlat(w, h, dates int, values []float64) (*Cube, error) {
	return cube.FromFlat(w, h, dates, values)
}

// ReadCubeFile loads a cube from the binary cube format.
func ReadCubeFile(path string) (*Cube, error) { return cube.ReadFile(path) }

// ProcessCubeStable is ProcessCube preceded by per-pixel ROC stable-
// history selection (bfastmonitor's default pipeline): each pixel's
// pre-stable observations are masked before fitting. level must be 0.10,
// 0.05 or 0.01. Cancellation of ctx stops both the ROC sweep and the
// detection sweep at steal-unit granularity.
func ProcessCubeStable(ctx context.Context, c *Cube, opt Options, level float64, workers int) (*BreakMap, error) {
	b, err := core.NewBatch(c.Pixels(), c.Dates, c.Values)
	if err != nil {
		return nil, err
	}
	trimmed, _, err := history.TrimBatch(ctx, b, opt, level, workers)
	if err != nil {
		return nil, err
	}
	results, err := baseline.CLike(ctx, trimmed, opt, workers)
	if err != nil {
		return nil, err
	}
	m := cube.NewBreakMap(c.Width, c.Height, c.Dates-opt.History)
	for i, r := range results {
		m.Break[i] = r.BreakIndex
		if r.Status == core.StatusOK {
			m.Magnitude[i] = r.MosumMean
		}
	}
	return m, nil
}

// ProcessCube runs the complete detection over a cube on the CPU
// (parallel across cores) and assembles the break map. dropEmpty removes
// all-NaN date slices first (History then refers to the compacted axis).
// Cancellation of ctx abandons the remaining pixel blocks and returns
// ctx.Err().
func ProcessCube(ctx context.Context, c *Cube, opt Options, dropEmpty bool, workers int) (*BreakMap, error) {
	work := c
	if dropEmpty {
		compact, _, err := c.DropEmptySlices()
		if err != nil {
			return nil, err
		}
		work = compact
	}
	b, err := core.NewBatch(work.Pixels(), work.Dates, work.Values)
	if err != nil {
		return nil, err
	}
	results, err := baseline.CLike(ctx, b, opt, workers)
	if err != nil {
		return nil, err
	}
	m := cube.NewBreakMap(c.Width, c.Height, work.Dates-opt.History)
	for i, r := range results {
		m.Break[i] = r.BreakIndex
		if r.Status == core.StatusOK {
			m.Magnitude[i] = r.MosumMean
		}
	}
	return m, nil
}

// StreamMonitor is the near-real-time per-pixel monitor: the history model
// is fitted once, then new observations are pushed as they are acquired
// (each update is O(K)) and the break is flagged the moment the process
// crosses its boundary — the paper's motivating early-warning use case.
type StreamMonitor = core.Monitor

// StreamState is the monitor's standing after a push.
type StreamState = core.State

// NewStreamMonitor fits the history model on the first opt.History entries
// of history and returns a streaming monitor; seriesLen is the total
// number of dates the design matrix must cover.
func NewStreamMonitor(history []float64, seriesLen int, opt Options) (*StreamMonitor, error) {
	return core.NewMonitor(history, seriesLen, opt)
}

// TraceProcess computes the full monitoring-process trajectory (process
// values, significance envelope, crossing point) for one pixel — the
// per-pixel diagnostic of Fig. 2 of the paper, ready for plotting.
func (d *Detector) TraceProcess(y []float64) (core.ProcessTrace, error) {
	if len(y) != d.n {
		return core.ProcessTrace{}, fmt.Errorf("bfast: series length %d, detector built for %d", len(y), d.n)
	}
	return core.Trace(y, d.design, d.opt)
}

// ProcessTrace is the per-pixel monitoring trajectory returned by
// Detector.TraceProcess.
type ProcessTrace = core.ProcessTrace
