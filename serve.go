package bfast

import (
	"io"
	"log/slog"

	"bfast/internal/obs"
	"bfast/internal/server"
)

// ServerConfig parameterizes the HTTP service; the zero value is
// production-ready. See the field docs on internal/server.Config.
type ServerConfig = server.Config

// CoalesceConfig groups the /v1/batch request-coalescing knobs
// (ServerConfig.Coalesce).
type CoalesceConfig = server.CoalesceConfig

// NRTConfig groups the stateful near-real-time serving knobs
// (ServerConfig.NRT): snapshot directory, snapshot cadence, session
// limits.
type NRTConfig = server.NRTConfig

// DiagConfig groups the production-diagnostics knobs
// (ServerConfig.Diag): the diagnostics directory for tail-sampled trace
// persistence and anomaly-captured profiles.
type DiagConfig = server.DiagConfig

// SLOConfig groups the per-endpoint latency objectives
// (ServerConfig.SLO) behind the slo.* burn-rate gauges.
type SLOConfig = server.SLOConfig

// Server is the BFAST-Monitor HTTP service: an http.Handler exposing
// /v1/detect, /v1/trace, /v1/batch, /v1/healthz, /metrics (JSON and
// Prometheus text), /debug/bfast, /debug/bfast/traces and
// /debug/bfast/flight, with context
// cancellation plumbed into the detection kernels, concurrency limiting
// with 429 backpressure, request-ID span tracing and graceful Shutdown.
// cmd/bfast-serve is a thin wrapper around this type.
type Server = server.Server

// HeaderRequestID is the correlation header honored and returned by the
// service; see internal/server.HeaderRequestID.
const HeaderRequestID = server.HeaderRequestID

// NewServer builds the HTTP service from cfg. It is the single
// constructor shared by library embedders and cmd/bfast-serve. It
// errors when the NRT state directory cannot be opened or the route
// table is internally inconsistent.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewLogger builds a structured logger for ServerConfig.Logger and
// PipelineConfig.Logger: level is debug/info/warn/error (default info),
// format is text or json (default text).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}
