package bfast

import (
	"bfast/internal/server"
)

// ServerConfig parameterizes the HTTP service; the zero value is
// production-ready. See the field docs on internal/server.Config.
type ServerConfig = server.Config

// Server is the BFAST-Monitor HTTP service: an http.Handler exposing
// /v1/detect, /v1/trace, /v1/batch, /v1/healthz, /metrics and
// /debug/bfast, with context cancellation plumbed into the detection
// kernels, concurrency limiting with 429 backpressure and graceful
// Shutdown. cmd/bfast-serve is a thin wrapper around this type.
type Server = server.Server

// NewServer builds the HTTP service from cfg. It is the single
// constructor shared by library embedders and cmd/bfast-serve.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }
