package bfast

import (
	"context"

	"math"
	"testing"
)

func exampleScene(t *testing.T, m, n, hist int) (*Scene, *Batch) {
	t.Helper()
	spec := SceneSpec{
		Name: "api-test", M: m, N: n, History: hist,
		NaNFrac: 0.4, BreakFrac: 0.5, BreakShift: -0.6, Seed: 71,
	}
	s, err := GenerateScene(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SceneBatch(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, b
}

func TestNewDetectorValidates(t *testing.T) {
	if _, err := NewDetector(100, DefaultOptions(100)); err == nil {
		t.Fatal("history == N must fail")
	}
	d, err := NewDetector(100, DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	if d.SeriesLen() != 100 || d.Options().History != 50 {
		t.Fatal("accessors broken")
	}
}

func TestDetectorSingleSeries(t *testing.T) {
	s, _ := exampleScene(t, 8, 256, 128)
	d, err := NewDetector(256, DefaultOptions(128))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		res, err := d.Detect(context.Background(), s.Y[i*256:(i+1)*256])
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == StatusOK && s.TrueBreak[i] >= 0 && res.HasBreak() {
			got := res.BreakIndex + 128
			if got < s.TrueBreak[i] {
				t.Fatalf("pixel %d: break %d before injected %d", i, got, s.TrueBreak[i])
			}
		}
	}
	if _, err := d.Detect(context.Background(), make([]float64, 10)); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestDetectorBatchMatchesSingle(t *testing.T) {
	_, b := exampleScene(t, 50, 200, 100)
	d, err := NewDetector(200, DefaultOptions(100))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.DetectBatch(context.Background(), b, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.M; i++ {
		single, err := d.Detect(context.Background(), b.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if single.BreakIndex != batch[i].BreakIndex || single.Status != batch[i].Status {
			t.Fatalf("pixel %d: batch %+v != single %+v", i, batch[i], single)
		}
	}
}

func TestDetectorBatchStrategyAgree(t *testing.T) {
	_, b := exampleScene(t, 32, 160, 80)
	d, err := NewDetector(160, DefaultOptions(80))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.DetectBatch(context.Background(), b, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Strategy{StrategyOurs, StrategyRgTlEfSeq, StrategyFullEfSeq} {
		got, err := d.DetectBatch(context.Background(), b, BatchOptions{Strategy: st, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if ref[i].BreakIndex != got[i].BreakIndex {
				t.Fatalf("strategy %v pixel %d differs", st, i)
			}
		}
	}
	if _, err := d.DetectBatch(context.Background(), &Batch{M: 1, N: 5, Y: make([]float64, 5)}, BatchOptions{}); err == nil {
		t.Fatal("wrong batch length must fail")
	}
}

func TestMosumBoundary(t *testing.T) {
	d, _ := NewDetector(100, DefaultOptions(50))
	b0, err := d.MosumBoundary(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if b0 <= 0 {
		t.Fatal("boundary must be positive")
	}
}

func TestProcessCubeEndToEnd(t *testing.T) {
	spec := SceneSpec{
		Name: "cube-test", M: 24 * 24, N: 128, History: 64,
		NaNFrac: 0.4, Width: 24, BreakFrac: 0.3, BreakShift: -0.7, Seed: 72,
	}
	s, err := GenerateScene(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CubeFromFlat(24, 24, 128, s.Y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ProcessCube(context.Background(), c, DefaultOptions(64), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	total, neg := m.CountBreaks()
	if total == 0 || neg == 0 {
		t.Fatalf("expected detections: total=%d neg=%d", total, neg)
	}
	// Most detected breaks should be on truly-broken pixels.
	correct := 0
	for i, b := range m.Break {
		if b >= 0 && s.TrueBreak[i] >= 0 {
			correct++
		}
	}
	if total > 0 && float64(correct)/float64(total) < 0.7 {
		t.Fatalf("only %d/%d detections on injected pixels", correct, total)
	}
}

func TestSimulateGPUPublicAPI(t *testing.T) {
	_, b := exampleScene(t, 64, 128, 64)
	run, err := SimulateGPU(b, DefaultOptions(64), ProfileRTX2080Ti(), StrategyOurs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.KernelTime <= 0 || len(run.Kernels) == 0 {
		t.Fatal("simulation produced no kernel runs")
	}
	if len(run.Breaks) != 64 || len(run.Magnitudes) != 64 {
		t.Fatal("per-pixel results missing")
	}
	slow, err := SimulateGPU(b, DefaultOptions(64), ProfileTitanZ(), StrategyOurs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow.KernelTime <= run.KernelTime {
		t.Fatal("TITAN Z must model slower than 2080 Ti")
	}
}

func TestPresetScenes(t *testing.T) {
	names := PresetSceneNames()
	if len(names) < 8 {
		t.Fatalf("expected ≥8 presets, got %d", len(names))
	}
	spec, err := PresetScene("D2")
	if err != nil {
		t.Fatal(err)
	}
	if spec.M != 16384 || spec.N != 512 {
		t.Fatalf("D2 spec wrong: %+v", spec)
	}
	if _, err := PresetScene("bogus"); err == nil {
		t.Fatal("unknown preset must fail")
	}
}

func TestNewCubeHelpers(t *testing.T) {
	c, err := NewCube(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(c.At(0, 0, 0)) {
		t.Fatal("new cube must start NaN")
	}
	if _, err := CubeFromFlat(2, 2, 4, make([]float64, 3)); err == nil {
		t.Fatal("bad flat size must fail")
	}
	if _, err := ReadCubeFile("/nonexistent/cube.bfc"); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestProcessCubeStable(t *testing.T) {
	// A scene whose pixels carry a contaminated early history and NO
	// monitoring break: plain processing over-detects, ROC processing
	// should not.
	const W, H, N, n = 12, 12, 280, 200
	y := make([]float64, W*H*N)
	for i := 0; i < W*H; i++ {
		for t0 := 0; t0 < N; t0++ {
			v := 0.5 + 0.3*math.Sin(2*math.Pi*float64(t0+1)/23) +
				0.01*math.Sin(float64(i+7*t0))
			if t0 < 60 {
				v += 1.0
			}
			y[i*N+t0] = v
		}
	}
	c, err := CubeFromFlat(W, H, N, y)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(n)
	plain, err := ProcessCube(context.Background(), c, opt, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := ProcessCubeStable(context.Background(), c, opt, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := plain.CountBreaks()
	st, _ := stable.CountBreaks()
	if pt == 0 {
		t.Skip("contamination did not induce false breaks on this host seed")
	}
	if st >= pt {
		t.Fatalf("ROC processing should reduce false breaks: %d -> %d", pt, st)
	}
	if _, err := ProcessCubeStable(context.Background(), c, opt, 0.42, 0); err == nil {
		t.Fatal("bad level must fail")
	}
}
