// Package compat preserves the retired pre-context entry points of the
// bfast root package as free-function shims.
//
// PR 3 consolidated batch detection behind the ctx-first
// Detector.DetectBatch(ctx, b, BatchOptions{...}) and kept the old
// signatures as Deprecated methods; this package is where those
// methods went when they were removed from the root API. The shims are
// byte-for-byte equivalent to the removed methods: they delegate to
// the same backends with context.Background(), so they offer no
// cancellation and no span tracing — which is exactly why internal
// code must not call them (enforced by the nodeprecated analyzer).
//
// Migration (also in the README "API migration" table):
//
//	compat.DetectBatchStrategy(d, b, s, w) → d.DetectBatch(ctx, b, bfast.BatchOptions{Strategy: s, Workers: w})
//	compat.DetectBatchFused(d, b, w)       → d.DetectBatch(ctx, b, bfast.BatchOptions{Workers: w})
//
// The package will be removed outright in a future major version; new
// code should import only the root package.
package compat

import (
	"context"
	"fmt"

	"bfast"
	"bfast/internal/baseline"
)

// DetectBatchStrategy runs the batch under an explicit execution
// strategy — the retired Detector.DetectBatchStrategy method.
//
// Deprecated: use Detector.DetectBatch(ctx, b,
// bfast.BatchOptions{Strategy: strat, Workers: workers}).
func DetectBatchStrategy(d *bfast.Detector, b *bfast.Batch, strat bfast.Strategy, workers int) ([]bfast.Result, error) {
	return d.DetectBatch(context.Background(), b, bfast.BatchOptions{Strategy: strat, Workers: workers})
}

// DetectBatchFused runs the batch through the fused C-like per-pixel
// pass — the retired Detector.DetectBatchFused method (the behavior of
// the pre-PR-3 two-argument DetectBatch(b, workers)). Results are
// bit-identical to Detector.DetectBatch.
//
// Deprecated: use Detector.DetectBatch(ctx, b,
// bfast.BatchOptions{Workers: workers}).
func DetectBatchFused(d *bfast.Detector, b *bfast.Batch, workers int) ([]bfast.Result, error) {
	if b.N != d.SeriesLen() {
		return nil, fmt.Errorf("compat: batch has %d dates, detector built for %d", b.N, d.SeriesLen())
	}
	return baseline.CLike(context.Background(), b, d.Options(), workers)
}
