package compat

import (
	"context"
	"math"
	"testing"

	"bfast"
)

// scene builds a small cloudy batch with an injected break, mirroring
// the root package's test scene generator.
func scene(t *testing.T, m, n, history int) (*bfast.Detector, *bfast.Batch) {
	t.Helper()
	s, err := bfast.GenerateScene(bfast.SceneSpec{
		Name: "compat", M: m, N: n, History: history,
		NaNFrac: 0.4, BreakFrac: 0.5, BreakShift: -0.7, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bfast.SceneBatch(s)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bfast.NewDetector(n, bfast.DefaultOptions(history))
	if err != nil {
		t.Fatal(err)
	}
	return d, b
}

func sameResults(t *testing.T, label string, got, want []bfast.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Status != w.Status || g.BreakIndex != w.BreakIndex ||
			math.Float64bits(g.MosumMean) != math.Float64bits(w.MosumMean) {
			t.Fatalf("%s: pixel %d: %+v vs %+v", label, i, g, w)
		}
	}
}

// TestShimsMatchDetectBatch pins the compat shims bit-for-bit to the
// consolidated ctx-first entry point they migrated from.
func TestShimsMatchDetectBatch(t *testing.T) {
	d, b := scene(t, 32, 160, 80)
	for _, st := range []bfast.Strategy{bfast.StrategyOurs, bfast.StrategyFullEfSeq} {
		want, err := d.DetectBatch(context.Background(), b, bfast.BatchOptions{Strategy: st, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := DetectBatchStrategy(d, b, st, 2)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "DetectBatchStrategy", got, want)
	}

	want, err := d.DetectBatch(context.Background(), b, bfast.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DetectBatchFused(d, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "DetectBatchFused", got, want)
}

// TestShimLengthValidation: the shims keep the removed methods' length
// checks.
func TestShimLengthValidation(t *testing.T) {
	d, _ := scene(t, 4, 160, 80)
	bad := &bfast.Batch{M: 1, N: 5, Y: make([]float64, 5)}
	if _, err := DetectBatchStrategy(d, bad, bfast.StrategyOurs, 1); err == nil {
		t.Fatal("DetectBatchStrategy: wrong batch length must fail")
	}
	if _, err := DetectBatchFused(d, bad, 1); err == nil {
		t.Fatal("DetectBatchFused: wrong batch length must fail")
	}
}
