package bfast

import (
	"time"

	"bfast/internal/core"
	"bfast/internal/gpusim"
	"bfast/internal/kernels"
	"bfast/internal/workload"
)

// GPUProfile is a simulated-device cost model (see internal/gpusim).
type GPUProfile = gpusim.Profile

// ProfileRTX2080Ti approximates the paper's §IV evaluation GPU.
func ProfileRTX2080Ti() GPUProfile { return gpusim.RTX2080Ti() }

// ProfileTitanZ approximates the paper's §V large-scale GPU.
func ProfileTitanZ() GPUProfile { return gpusim.TitanZ() }

// GPURun summarizes one simulated whole-application execution.
type GPURun struct {
	// Breaks and Magnitudes are the per-pixel results (float32 pipeline).
	Breaks     []int
	Magnitudes []float32
	// KernelTime is the modeled device time.
	KernelTime time.Duration
	// Kernels lists the modeled per-kernel executions.
	Kernels []gpusim.KernelRun
}

// SimulateGPU executes BFAST-Monitor functionally in float32 (the GPU's
// arithmetic) over the batch and models the kernel times the paper's GPU
// implementation would take on the given device, under the chosen
// strategy. sampleM > 0 runs the simulation on a strided sub-batch of
// that many pixels and extrapolates the modeled times (the returned
// results then cover only the sub-batch). See DESIGN.md for the scope and
// calibration of the simulation.
func SimulateGPU(b *Batch, opt Options, profile GPUProfile, strat Strategy, sampleM int) (*GPURun, error) {
	b32, err := kernels.FromFloat64(b.M, b.N, b.Y)
	if err != nil {
		return nil, err
	}
	dev := gpusim.NewDevice(profile)
	res, err := kernels.SimulateApp(dev, b32, opt, strat, sampleM)
	if err != nil {
		return nil, err
	}
	return &GPURun{
		Breaks:     res.Breaks,
		Magnitudes: res.Means,
		KernelTime: res.KernelTime,
		Kernels:    res.Runs,
	}, nil
}

// SceneSpec describes a synthetic satellite scene (see internal/workload);
// the Table I presets are available through PresetScene.
type SceneSpec = workload.Spec

// Scene is a generated synthetic dataset with break ground truth.
type Scene = workload.Dataset

// GenerateScene builds a synthetic scene for the spec.
func GenerateScene(spec SceneSpec) (*Scene, error) { return workload.Generate(spec) }

// PresetScene returns a named dataset spec from the paper's evaluation
// ("D1".."D6", "Peru (Small)", "Africa (Small)", "PeruSmallScene",
// "PeruLargeScene", "AfricaImageScene").
func PresetScene(name string) (SceneSpec, error) { return workload.Preset(name) }

// PresetSceneNames lists all available preset names.
func PresetSceneNames() []string { return workload.PresetNames() }

// SceneBatch wraps a generated scene as a Batch (sharing storage).
func SceneBatch(s *Scene) (*Batch, error) {
	return core.NewBatch(s.Spec.M, s.Spec.N, s.Y)
}
