// Satellite pipeline: the complete data path of the paper, end to end —
// multispectral reflectance bands on a real acquisition calendar are
// reduced to NDMI (§II-A), the stable history is selected per pixel with
// the reverse-ordered CUSUM test, BFAST-Monitor runs over the scene, and
// the campaign cost for a continental archive is extrapolated on a
// modeled 20-GPU cluster (§V).
//
// Run with: go run ./examples/satellite
package main

import (
	"fmt"
	"log"
	"time"

	"bfast"
)

func main() {
	// 1. Acquisition calendar: 16-day Landsat cadence, 2000-2013.
	start := time.Date(2000, 1, 3, 0, 0, 0, 0, time.UTC)
	calendar, err := bfast.Landsat16Day(start, 300)
	if err != nil {
		log.Fatal(err)
	}
	axis, err := bfast.NewTimeAxis(calendar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calendar: %d acquisitions, %.1f-%.1f\n",
		axis.Len(), axis.Years[0], axis.Years[axis.Len()-1])

	// 2. Two-band scene (NIR + SWIR) with clouds and deforestation.
	monitorStart := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	history := axis.IndexAtOrAfter(monitorStart)
	scene, err := bfast.GenerateBandScene(bfast.BandSceneSpec{
		Width: 64, Height: 64, Dates: axis.Len(), History: history,
		CloudFrac: 0.5, BreakFrac: 0.1, Seed: 2013,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Vegetation index: NDMI from the two bands (clouds propagate).
	ndmi, err := bfast.CubeNDMI(scene.NIR, scene.SWIR)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Detector on the real (decimal-year) time axis; per-pixel ROC
	//    stable-history selection before monitoring.
	det, err := bfast.NewDetectorForAxis(axis, monitorStart, bfast.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}
	begin := time.Now()
	breaks, neg, trimmed := 0, 0, 0
	for i := 0; i < ndmi.Pixels(); i++ {
		res, startIdx, err := det.DetectStable(ndmi.Series(i))
		if err != nil {
			log.Fatal(err)
		}
		if startIdx > 0 {
			trimmed++
		}
		if res.HasBreak() {
			breaks++
			if res.MosumMean < 0 {
				neg++
			}
		}
	}
	elapsed := time.Since(begin)
	fmt.Printf("detection: %d pixels in %v (%.0f px/s)\n",
		ndmi.Pixels(), elapsed.Round(time.Millisecond),
		float64(ndmi.Pixels())/elapsed.Seconds())
	fmt.Printf("breaks:    %d (%d vegetation loss), ROC trimmed %d histories\n",
		breaks, neg, trimmed)

	// 5. Campaign extrapolation: the paper's Africa archive (38234 images,
	//    ~8.5 s/image on a TITAN Z) on a modeled 20-GPU cluster.
	campaign, err := bfast.ScheduleImages(
		uniformTimes(38234, 8500*time.Millisecond),
		bfast.ClusterConfig{Devices: 20},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign:  Africa, one monitoring period: %.1f h on one GPU, %.1f h on 20 GPUs (efficiency %.0f%%)\n",
		campaign.TotalWork.Hours(), campaign.Makespan.Hours(), 100*campaign.Efficiency)
}

func uniformTimes(n int, d time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}
