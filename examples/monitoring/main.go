// Monitoring-period sweep: the §V-C experiment of the paper at example
// scale. The same scene is analyzed with consecutive one-year monitoring
// periods (2010-2011, 2011-2012, …): each run extends the history by one
// year and monitors the following year, so a deforestation event shows up
// as a break exactly in the period covering it. The example prints, per
// period, how many breaks were found, how many indicate vegetation loss,
// and how that compares with the events injected in that year.
//
// Run with: go run ./examples/monitoring
package main

import (
	"context"

	"fmt"
	"log"

	"bfast"
)

func main() {
	const yearDates = 23 // 16-day composites per year
	spec := bfast.SceneSpec{
		Name:       "sweep-example",
		M:          96 * 96,
		Width:      96,
		N:          113 + 4*yearDates, // history to "2010" + 4 years
		History:    113,
		NaNFrac:    0.6,
		Mask:       1,
		BreakFrac:  0.12,
		BreakShift: -0.5,
		Seed:       42,
	}
	scene, err := bfast.GenerateScene(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %10s %10s %14s\n", "period", "breaks", "negative", "events in year")
	for year := 0; year < 4; year++ {
		history := spec.History + year*yearDates
		dates := history + yearDates

		// Cut every pixel's series at the period end.
		sub := make([]float64, spec.M*dates)
		for i := 0; i < spec.M; i++ {
			copy(sub[i*dates:(i+1)*dates], scene.Y[i*spec.N:i*spec.N+dates])
		}
		b, err := bfast.NewBatch(spec.M, dates, sub)
		if err != nil {
			log.Fatal(err)
		}
		det, err := bfast.NewDetector(dates, bfast.DefaultOptions(history))
		if err != nil {
			log.Fatal(err)
		}
		results, err := det.DetectBatch(context.Background(), b, bfast.BatchOptions{})
		if err != nil {
			log.Fatal(err)
		}

		breaks, negative := 0, 0
		for _, r := range results {
			if r.HasBreak() {
				breaks++
				if r.MosumMean < 0 {
					negative++
				}
			}
		}
		injected := 0
		for _, at := range scene.TrueBreak {
			if at >= history && at < dates {
				injected++
			}
		}
		fmt.Printf("2010+%d year %9d %10d %14d\n", year, breaks, negative, injected)
	}
	fmt.Println("\nnegative-magnitude breaks accumulate in the periods where events were injected —")
	fmt.Println("the per-year maps of Figs. 3/9/11 are exactly this, rendered spatially.")
}
