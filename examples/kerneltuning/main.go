// Kernel tuning: the paper's Figs. 6-8 ablation at example scale, run on
// the GPU-execution simulator. It compares, on one Table I dataset:
//
//   - the three batch-masked matrix-multiplication kernels (register
//     tiling — the paper's contribution — vs stock block tiling vs the
//     untiled loop nest);
//   - the two batched Gauss-Jordan inversion kernels (shared memory vs
//     global memory);
//   - the three whole-application strategies (Ours / RgTl-EfSeq /
//     Full-EfSeq) plus the measured CPU-parallel baseline of this host.
//
// Run with: go run ./examples/kerneltuning
package main

import (
	"context"

	"fmt"
	"log"
	"time"

	"bfast"
)

func main() {
	// D2 geometry, sampled to keep the example quick.
	spec, err := bfast.PresetScene("D2")
	if err != nil {
		log.Fatal(err)
	}
	spec.M = 4096
	spec.Width = 64
	scene, err := bfast.GenerateScene(spec)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := bfast.SceneBatch(scene)
	if err != nil {
		log.Fatal(err)
	}
	opt := bfast.DefaultOptions(spec.History)
	profile := bfast.ProfileRTX2080Ti()

	fmt.Printf("dataset D2 (sampled to M=%d), device %s\n\n", spec.M, profile.Name)
	fmt.Println("application strategies (modeled kernel time, identical results):")
	var ours time.Duration
	for _, s := range []bfast.Strategy{bfast.StrategyOurs, bfast.StrategyRgTlEfSeq, bfast.StrategyFullEfSeq} {
		run, err := bfast.SimulateGPU(batch, opt, profile, s, 0)
		if err != nil {
			log.Fatal(err)
		}
		if s == bfast.StrategyOurs {
			ours = run.KernelTime
		}
		fmt.Printf("  %-12s %12v  (%.1fx vs Ours)\n", s, run.KernelTime,
			run.KernelTime.Seconds()/ours.Seconds())
		for _, k := range run.Kernels {
			fmt.Printf("      %-28s %12v\n", k.Name, k.Time)
		}
	}

	det, err := bfast.NewDetector(spec.N, opt)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := det.DetectBatch(context.Background(), batch, bfast.BatchOptions{}); err != nil {
		log.Fatal(err)
	}
	cpu := time.Since(start)
	fmt.Printf("\nmeasured CPU-parallel (this host): %v — modeled GPU is %.0fx faster\n",
		cpu.Round(time.Microsecond), cpu.Seconds()/ours.Seconds())
	fmt.Println("(the paper reports 24-48x against a 32-thread Xeon; see EXPERIMENTS.md)")
}
