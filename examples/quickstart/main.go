// Quickstart: detect a break in a single pixel time series.
//
// A synthetic NDMI-like series is built with two years of 16-day
// composites as the stable history and three years of monitoring, a cloud
// mask hiding ~40% of the observations, and an abrupt drop (deforestation)
// midway through the monitoring period. BFAST-Monitor fits the harmonic
// season-trend model on the history and flags the first date on which the
// MOSUM process leaves its significance envelope.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"

	"fmt"
	"log"
	"math"
	"math/rand"

	"bfast"
)

func main() {
	const (
		freq    = 23.0 // 16-day composites: 23 observations per year
		history = 46   // two years of stable history
		total   = 115  // five years in total
		breakAt = 80   // deforestation event (absolute date index)
	)

	// Build the series: seasonal vegetation signal + noise + clouds.
	rng := rand.New(rand.NewSource(7))
	y := make([]float64, total)
	for t := range y {
		seasonal := 0.55 + 0.25*math.Sin(2*math.Pi*float64(t+1)/freq)
		v := seasonal + rng.NormFloat64()*0.03
		if t >= breakAt {
			v -= 0.4 // canopy loss: NDMI drops
		}
		if rng.Float64() < 0.4 {
			v = math.NaN() // cloud
		}
		y[t] = v
	}

	opt := bfast.DefaultOptions(history)
	det, err := bfast.NewDetector(total, opt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Detect(context.Background(), y)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("status:          %v\n", res.Status)
	fmt.Printf("valid history:   %d of %d dates\n", res.ValidHistory, history)
	fmt.Printf("valid total:     %d of %d dates\n", res.Valid, total)
	if res.HasBreak() {
		abs := history + res.BreakIndex
		fmt.Printf("break detected:  monitoring offset %d (date index %d; true event at %d)\n",
			res.BreakIndex, abs, breakAt)
		fmt.Printf("magnitude:       %+.3f (negative = vegetation loss)\n", res.MosumMean)
	} else {
		fmt.Println("no break detected")
	}
}
