// Near-real-time monitoring: the paper's early-warning motivation ("the
// timely and spatially accurate detection of such events is critical to
// ... trigger countermeasures"). The model is fitted once on the history;
// observations then arrive one acquisition at a time — cloudy ones as NaN —
// and the monitor updates in O(K) per observation, flagging the break the
// moment the MOSUM process crosses its envelope, years before the series
// "ends".
//
// Run with: go run ./examples/nearrealtime
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"bfast"
)

func main() {
	const (
		freq    = 23.0
		history = 115 // five years of stable history
		total   = 230 // five more years of (future) monitoring
		eventAt = 161 // deforestation event two years into monitoring
	)
	rng := rand.New(rand.NewSource(99))
	observe := func(t int) float64 {
		v := 0.55 + 0.25*math.Sin(2*math.Pi*float64(t+1)/freq) + rng.NormFloat64()*0.03
		if t >= eventAt {
			v -= 0.45
		}
		if rng.Float64() < 0.45 {
			return math.NaN() // clouds
		}
		return v
	}

	// Fit once on the archive history.
	hist := make([]float64, history)
	for t := range hist {
		hist[t] = observe(t)
	}
	mon, err := bfast.NewStreamMonitor(hist, total, bfast.DefaultOptions(history))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model fitted: n̄=%d valid history acquisitions, σ̂=%.4f\n",
		mon.ValidHistory(), mon.Sigma())

	// Live monitoring: each new acquisition updates the process.
	for t := history; t < total; t++ {
		st, err := mon.Push(observe(t))
		if err != nil {
			log.Fatal(err)
		}
		if t%23 == 0 && !math.IsNaN(st.Process) {
			fmt.Printf("  date %3d (year %d): process %+6.2f, boundary ±%.2f\n",
				t, 2000+t*16/365, st.Process, st.Boundary)
		}
		if st.BreakDetected {
			fmt.Printf("\nALERT at date %d: break flagged (event injected at %d, detection lag %d acquisitions ≈ %d days)\n",
				t, eventAt, t-eventAt, (t-eventAt)*16)
			direction := "loss"
			if st.Process > 0 {
				direction = "gain"
			}
			fmt.Printf("process %.2f crossed boundary %.2f: vegetation %s\n",
				st.Process, st.Boundary, direction)
			return
		}
	}
	fmt.Println("no break detected over the monitoring period")
}
