// Deforestation mapping: the paper's Peru scenario (Figs. 3 and 9) at
// example scale. A cloudy tropical-forest scene with injected clear-cut
// events is generated, BFAST-Monitor runs over every pixel in parallel,
// and the result is written as the paper's two map products:
//
//   - timing.ppm — when each (negative-magnitude) break occurred,
//     yellow = early in the monitoring period, red = late;
//   - magnitude.pgm — the MOSUM-mean change magnitude, dark = loss.
//
// Detection quality is scored against the generator's ground truth.
//
// Run with: go run ./examples/deforestation
package main

import (
	"context"

	"fmt"
	"log"
	"time"

	"bfast"
)

func main() {
	// A 128x128-pixel scene, 16-day cadence: ~5 years history to 2010,
	// ~4.5 years monitoring, 69% cloud cover (the Peru regime of Table I),
	// with 8% of the pixels deforested at some point after 2010.
	spec := bfast.SceneSpec{
		Name:       "peru-example",
		M:          128 * 128,
		Width:      128,
		N:          216,
		History:    113,
		NaNFrac:    0.69,
		Mask:       1, // spatially-correlated clouds
		BreakFrac:  0.08,
		BreakShift: -0.5,
		Seed:       2010,
	}
	scene, err := bfast.GenerateScene(spec)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bfast.CubeFromFlat(128, 128, spec.N, scene.Y)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	m, err := bfast.ProcessCube(context.Background(), c, bfast.DefaultOptions(spec.History), false, 0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	total, neg := m.CountBreaks()
	fmt.Printf("scene:     %dx%d pixels, %d dates, %.0f%% clouds\n",
		128, 128, spec.N, 100*scene.NaNFraction())
	fmt.Printf("runtime:   %v (%.0f pixels/s, all cores)\n",
		elapsed.Round(time.Millisecond), float64(spec.M)/elapsed.Seconds())
	fmt.Printf("breaks:    %d total, %d with negative magnitude\n", total, neg)

	// Score against ground truth: a correct detection is a
	// negative-magnitude break on a truly deforested pixel.
	tp, fp, fn := 0, 0, 0
	for i := range m.Break {
		detected := m.Break[i] >= 0 && m.Magnitude[i] < 0
		truth := scene.TrueBreak[i] >= 0
		switch {
		case detected && truth:
			tp++
		case detected && !truth:
			fp++
		case !detected && truth:
			fn++
		}
	}
	fmt.Printf("vs truth:  %d hits, %d false alarms, %d missed (precision %.2f, recall %.2f)\n",
		tp, fp, fn,
		float64(tp)/float64(tp+fp), float64(tp)/float64(tp+fn))

	if err := m.WriteTimingPPMFile("timing.ppm"); err != nil {
		log.Fatal(err)
	}
	if err := m.WriteMagnitudePGMFile("magnitude.pgm", 0.25); err != nil {
		log.Fatal(err)
	}
	fmt.Println("maps:      timing.ppm (yellow=early, red=late), magnitude.pgm (dark=loss)")
}
